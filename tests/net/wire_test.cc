// Wire-format tests: every message round-trips bit-exactly, and every class
// of malformed frame is rejected with the right status (the transport must
// never guess at corrupt bytes).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "net/wire.h"
#include "ps/compression.h"

namespace specsync::net {
namespace {

// Encode → decode, checking the request id echoes through, and hand the
// typed message back to the caller for field-level comparison.
template <typename T>
T RoundTrip(const T& message, std::uint64_t request_id = 42) {
  const std::vector<std::uint8_t> frame = EncodeFrame(message, request_id);
  std::uint64_t decoded_id = 0;
  WireMessage out;
  EXPECT_EQ(DecodeFrame(frame, decoded_id, out), WireStatus::kOk);
  EXPECT_EQ(decoded_id, request_id);
  EXPECT_TRUE(std::holds_alternative<T>(out));
  return std::get<T>(out);
}

// Overwrites `bytes` little-endian at `pos` (frame corruption helper).
void PutU16(std::vector<std::uint8_t>& frame, std::size_t pos,
            std::uint16_t v) {
  frame[pos] = static_cast<std::uint8_t>(v & 0xff);
  frame[pos + 1] = static_cast<std::uint8_t>(v >> 8);
}
void PutU32(std::vector<std::uint8_t>& frame, std::size_t pos,
            std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    frame[pos + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

TEST(WireTest, PullShardReqRoundTrip) {
  const PullShardReq decoded = RoundTrip(PullShardReq{7});
  EXPECT_EQ(decoded.shard, 7u);
}

TEST(WireTest, PullShardRespRoundTrip) {
  PullShardResp resp;
  resp.shard = 2;
  resp.offset = 100;
  resp.shard_version = 5;
  resp.global_version = 17;
  resp.params = {1.5, -2.25, 0.0, std::numeric_limits<double>::min(),
                 std::numeric_limits<double>::max()};
  const PullShardResp decoded = RoundTrip(resp, 0xdeadbeefcafeull);
  EXPECT_EQ(decoded.shard, 2u);
  EXPECT_EQ(decoded.offset, 100u);
  EXPECT_EQ(decoded.shard_version, 5u);
  EXPECT_EQ(decoded.global_version, 17u);
  EXPECT_EQ(decoded.params, resp.params);
}

TEST(WireTest, EmptyParamsRoundTrip) {
  PullShardResp resp;  // zero-length shard: params empty is a valid reply
  const PullShardResp decoded = RoundTrip(resp);
  EXPECT_TRUE(decoded.params.empty());
}

TEST(WireTest, DensePushRoundTrip) {
  PushShardReq req;
  req.shard = 1;
  req.epoch = 9;
  req.sparse = false;
  req.dense_offset = 64;
  req.dense = {0.125, -7.5, 1e300};
  const PushShardReq decoded = RoundTrip(req);
  EXPECT_EQ(decoded.shard, 1u);
  EXPECT_EQ(decoded.epoch, 9u);
  EXPECT_FALSE(decoded.sparse);
  EXPECT_EQ(decoded.dense_offset, 64u);
  EXPECT_EQ(decoded.dense, req.dense);
  EXPECT_TRUE(decoded.indices.empty());
}

TEST(WireTest, SparsePushSpanningShardBoundaryRoundTrip) {
  // Indices 4 and 5 straddle the [0,5)/[5,10) boundary of a dim-10 2-shard
  // layout; on the wire they are just global indices, shipped verbatim.
  PushShardReq req;
  req.shard = 0;
  req.epoch = 3;
  req.sparse = true;
  req.indices = {4, 5, 9};
  req.values = {0.5, -0.5, 2.0};
  const PushShardReq decoded = RoundTrip(req);
  EXPECT_TRUE(decoded.sparse);
  EXPECT_EQ(decoded.indices, req.indices);
  EXPECT_EQ(decoded.values, req.values);
}

TEST(WireTest, EmptySparsePushRoundTrip) {
  // The empty-gradient push still crosses the wire as one message.
  PushShardReq req;
  req.sparse = true;
  const PushShardReq decoded = RoundTrip(req);
  EXPECT_TRUE(decoded.sparse);
  EXPECT_TRUE(decoded.indices.empty());
  EXPECT_TRUE(decoded.values.empty());
}

TEST(WireTest, CommitAndAckRoundTrip) {
  RoundTrip(CommitPushReq{});
  const AckResp decoded = RoundTrip(AckResp{kAckBadShard, 123});
  EXPECT_EQ(decoded.status, kAckBadShard);
  EXPECT_EQ(decoded.value, 123u);
}

TEST(WireTest, NegativeZeroAndNaNBitPatternsSurvive) {
  PullShardResp resp;
  resp.params = {-0.0, std::numeric_limits<double>::quiet_NaN()};
  const PullShardResp decoded = RoundTrip(resp);
  EXPECT_TRUE(std::signbit(decoded.params[0]));
  EXPECT_TRUE(std::isnan(decoded.params[1]));
}

TEST(WireTest, ShortHeaderRejected) {
  const auto frame = EncodeFrame(PullShardReq{0}, 1);
  FrameHeader header;
  EXPECT_EQ(DecodeHeader(std::span(frame).first(kHeaderBytes - 1), header),
            WireStatus::kShortHeader);
  EXPECT_EQ(DecodeHeader({}, header), WireStatus::kShortHeader);
}

TEST(WireTest, BadMagicRejected) {
  auto frame = EncodeFrame(PullShardReq{0}, 1);
  PutU32(frame, 0, 0x12345678u);
  std::uint64_t id = 0;
  WireMessage out;
  EXPECT_EQ(DecodeFrame(frame, id, out), WireStatus::kBadMagic);
}

TEST(WireTest, BadVersionRejected) {
  auto frame = EncodeFrame(PullShardReq{0}, 1);
  PutU16(frame, 4, kWireVersion + 1);
  std::uint64_t id = 0;
  WireMessage out;
  EXPECT_EQ(DecodeFrame(frame, id, out), WireStatus::kBadVersion);
}

TEST(WireTest, V1FrameRejectedByV2Parser) {
  // The current protocol is v2 (pipelining contract); a v1 peer must be
  // refused outright — mixed-version pipelining would be undebuggable.
  static_assert(kWireVersion == 2);
  auto frame = EncodeFrame(PullShardReq{0}, 1);
  PutU16(frame, 4, 1);
  std::uint64_t id = 0;
  WireMessage out;
  EXPECT_EQ(DecodeFrame(frame, id, out), WireStatus::kBadVersion);
}

TEST(WireTest, BadTypeRejected) {
  auto frame = EncodeFrame(PullShardReq{0}, 1);
  PutU16(frame, 6, 999);
  std::uint64_t id = 0;
  WireMessage out;
  EXPECT_EQ(DecodeFrame(frame, id, out), WireStatus::kBadType);
}

TEST(WireTest, OversizedPayloadRejectedBeforeAllocation) {
  auto frame = EncodeFrame(PullShardReq{0}, 1);
  PutU32(frame, 16, kMaxPayloadBytes + 1);
  FrameHeader header;
  EXPECT_EQ(DecodeHeader(frame, header), WireStatus::kOversized);
}

TEST(WireTest, TruncatedPayloadRejected) {
  PullShardResp resp;
  resp.params = {1.0, 2.0, 3.0};
  const auto frame = EncodeFrame(resp, 1);
  // Body claims 3 doubles; hand the parser one byte fewer than it needs.
  FrameHeader header;
  ASSERT_EQ(DecodeHeader(frame, header), WireStatus::kOk);
  const std::span<const std::uint8_t> payload =
      std::span(frame).subspan(kHeaderBytes);
  WireMessage out;
  EXPECT_EQ(DecodePayload(header, payload.first(payload.size() - 1), out),
            WireStatus::kTruncated);
}

TEST(WireTest, TrailingBytesRejected) {
  auto frame = EncodeFrame(CommitPushReq{}, 1);
  frame.push_back(0xab);
  PutU32(frame, 16, 1);  // header agrees the junk byte is payload
  std::uint64_t id = 0;
  WireMessage out;
  EXPECT_EQ(DecodeFrame(frame, id, out), WireStatus::kMalformed);
}

TEST(WireTest, HugeElementCountRejectedNotOverflowed) {
  // A sparse push whose nnz field claims 2^61 entries: count * 16 bytes
  // overflows size_t if computed naively. The parser must reject it as
  // truncated without allocating.
  PushShardReq req;
  req.sparse = true;
  auto frame = EncodeFrame(req, 1);
  // Payload layout: u32 shard, u64 epoch, u8 kind, u64 nnz.
  const std::size_t nnz_pos = kHeaderBytes + 4 + 8 + 1;
  ASSERT_EQ(frame.size(), nnz_pos + 8);
  for (int i = 0; i < 8; ++i) frame[nnz_pos + i] = 0xff;
  std::uint64_t id = 0;
  WireMessage out;
  EXPECT_EQ(DecodeFrame(frame, id, out), WireStatus::kTruncated);
}

TEST(WireTest, BadDenseSparseKindRejected) {
  PushShardReq req;
  const auto good = EncodeFrame(req, 1);
  auto frame = good;
  frame[kHeaderBytes + 4 + 8] = 3;  // kind byte: only 0/1/2 are defined
  std::uint64_t id = 0;
  WireMessage out;
  EXPECT_EQ(DecodeFrame(frame, id, out), WireStatus::kMalformed);
}

TEST(WireTest, BadCodecByteInCodedPushRejected) {
  // kind 2 must carry codec 2 (int8) or 3 (fp16); anything else is malformed
  // (codec byte here lands where the old dense offset began — the strict
  // parser must not guess).
  PushShardReq req;
  const auto good = EncodeFrame(req, 1);
  auto frame = good;
  frame[kHeaderBytes + 4 + 8] = 2;  // kind: coded
  // The next payload byte is now read as the codec id; offset bytes are 0.
  std::uint64_t id = 0;
  WireMessage out;
  EXPECT_EQ(DecodeFrame(frame, id, out), WireStatus::kMalformed);
}

TEST(WireTest, RequestIdZeroAndMaxSurvive) {
  RoundTrip(PullShardReq{1}, 0);
  RoundTrip(PullShardReq{1}, std::numeric_limits<std::uint64_t>::max());
}

// --- trace-context extension -------------------------------------------------

TEST(WireTraceExtTest, AbsentExtensionEncodesByteIdenticalFrames) {
  // The golden-digest pin depends on this: a frame without trace context
  // must be indistinguishable from a pre-extension frame.
  const PullShardReq req{3};
  const auto plain = EncodeFrame(req, 9);
  const auto with_null = EncodeFrame(req, 9, nullptr);
  const TraceContext invalid;  // trace_id 0 = absent
  const auto with_invalid = EncodeFrame(req, 9, &invalid);
  EXPECT_EQ(plain, with_null);
  EXPECT_EQ(plain, with_invalid);
}

TEST(WireTraceExtTest, TraceContextRoundTripsOnEveryMessageType) {
  const TraceContext trace{0xdeadbeef12345678ull, 0x42ull};
  const std::vector<WireMessage> messages = {
      PullShardReq{1}, PushShardReq{}, CommitPushReq{}, AckResp{kAckOk, 0}};
  for (const WireMessage& message : messages) {
    const auto frame = std::visit(
        [&](const auto& m) { return EncodeFrame(m, 5, &trace); }, message);
    std::uint64_t id = 0;
    WireMessage out;
    TraceContext decoded;
    ASSERT_EQ(DecodeFrame(frame, id, out, &decoded), WireStatus::kOk);
    EXPECT_EQ(decoded.trace_id, trace.trace_id);
    EXPECT_EQ(decoded.parent_span, trace.parent_span);
    EXPECT_TRUE(decoded.valid());
  }
}

TEST(WireTraceExtTest, ExtensionIgnoredByTracelessDecode) {
  // A peer that does not understand the extension still decodes the message
  // (it passes no TraceContext slot and the tail is skipped, not rejected).
  const TraceContext trace{7, 7};
  const auto frame = EncodeFrame(PullShardReq{2}, 11, &trace);
  std::uint64_t id = 0;
  WireMessage out;
  ASSERT_EQ(DecodeFrame(frame, id, out), WireStatus::kOk);
  EXPECT_EQ(std::get<PullShardReq>(out).shard, 2u);
}

TEST(WireTraceExtTest, AbsentExtensionDecodesInvalidContext) {
  const auto frame = EncodeFrame(PullShardReq{2}, 11);
  std::uint64_t id = 0;
  WireMessage out;
  TraceContext decoded{123, 456};  // stale values must be cleared
  ASSERT_EQ(DecodeFrame(frame, id, out, &decoded), WireStatus::kOk);
  EXPECT_FALSE(decoded.valid());
  EXPECT_EQ(decoded.trace_id, 0u);
}

TEST(WireTraceExtTest, LongerExtensionSkippedForForwardCompat) {
  // A future peer may append fields after parent_span; ext_bytes tells us
  // how much to skip.
  const TraceContext trace{0xabc, 0xdef};
  auto frame = EncodeFrame(PullShardReq{4}, 13, &trace);
  // Declare 4 extra extension bytes and append them.
  const std::size_t ext_len_pos = frame.size() - kTraceExtBytes - 2;
  PutU16(frame, ext_len_pos, kTraceExtBytes + 4);
  for (int i = 0; i < 4; ++i) frame.push_back(0xee);
  PutU32(frame, 16, static_cast<std::uint32_t>(frame.size() - kHeaderBytes));
  std::uint64_t id = 0;
  WireMessage out;
  TraceContext decoded;
  ASSERT_EQ(DecodeFrame(frame, id, out, &decoded), WireStatus::kOk);
  EXPECT_EQ(decoded.trace_id, 0xabcu);
  EXPECT_EQ(decoded.parent_span, 0xdefu);
}

TEST(WireTraceExtTest, TruncatedExtensionRejected) {
  const TraceContext trace{1, 2};
  auto frame = EncodeFrame(PullShardReq{4}, 13, &trace);
  frame.resize(frame.size() - 3);
  PutU32(frame, 16, static_cast<std::uint32_t>(frame.size() - kHeaderBytes));
  std::uint64_t id = 0;
  WireMessage out;
  TraceContext decoded;
  EXPECT_EQ(DecodeFrame(frame, id, out, &decoded), WireStatus::kTruncated);
}

TEST(WireTraceExtTest, UndersizedExtLengthRejected) {
  const TraceContext trace{1, 2};
  auto frame = EncodeFrame(PullShardReq{4}, 13, &trace);
  const std::size_t ext_len_pos = frame.size() - kTraceExtBytes - 2;
  PutU16(frame, ext_len_pos, kTraceExtBytes - 1);
  std::uint64_t id = 0;
  WireMessage out;
  EXPECT_EQ(DecodeFrame(frame, id, out, nullptr), WireStatus::kMalformed);
}

TEST(WireTraceExtTest, NonExtensionTrailingBytesStillRejected) {
  // The extension does not relax the strict-length contract: trailing bytes
  // that do not open with the extension magic remain malformed.
  auto frame = EncodeFrame(PullShardReq{4}, 13);
  for (int i = 0; i < 22; ++i) frame.push_back(0x00);
  PutU32(frame, 16, static_cast<std::uint32_t>(frame.size() - kHeaderBytes));
  std::uint64_t id = 0;
  WireMessage out;
  TraceContext decoded;
  EXPECT_EQ(DecodeFrame(frame, id, out, &decoded), WireStatus::kMalformed);
}

// --- coded pushes and delta pulls --------------------------------------------

// Hand-assembled little-endian writer, independent of wire.cc's internals:
// the golden-byte pins below must not share code with the encoder they pin.
struct GoldenFrame {
  std::vector<std::uint8_t> bytes;

  void U8(std::uint8_t v) { bytes.push_back(v); }
  void U16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) bytes.push_back(v >> (8 * i) & 0xff);
  }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(v >> (8 * i) & 0xff);
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(v >> (8 * i) & 0xff);
  }
  void F64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Header(MsgType type, std::uint64_t request_id) {
    U32(kWireMagic);
    U16(kWireVersion);
    U16(static_cast<std::uint16_t>(type));
    U64(request_id);
    U32(0);  // payload length patched by Finish()
  }
  std::vector<std::uint8_t> Finish() {
    const auto payload =
        static_cast<std::uint32_t>(bytes.size() - kHeaderBytes);
    for (int i = 0; i < 4; ++i) {
      bytes[16 + i] = payload >> (8 * i) & 0xff;
    }
    return bytes;
  }
};

// The codec=none bit-identity pin: a kind-0 (dense) and a kind-1 (sparse)
// push frame must match golden bytes assembled by hand — the `coded` field
// and the kind-2 encoding may not perturb the legacy layouts, or every
// pre-codec golden trace digest drifts.
TEST(WireCodecTest, UncodedDensePushFrameBytesPinned) {
  PushShardReq req;
  req.shard = 1;
  req.epoch = 9;
  req.sparse = false;
  req.dense_offset = 64;
  req.dense = {0.125, -7.5};

  GoldenFrame golden;
  golden.Header(MsgType::kPushShardReq, 42);
  golden.U32(1);   // shard
  golden.U64(9);   // epoch
  golden.U8(0);    // kind: dense
  golden.U64(64);  // offset
  golden.U64(2);   // count
  golden.F64(0.125);
  golden.F64(-7.5);
  EXPECT_EQ(EncodeFrame(req, 42), golden.Finish());
}

TEST(WireCodecTest, UncodedSparsePushFrameBytesPinned) {
  PushShardReq req;
  req.shard = 0;
  req.epoch = 3;
  req.sparse = true;
  req.indices = {4, 9};
  req.values = {0.5, -2.0};

  GoldenFrame golden;
  golden.Header(MsgType::kPushShardReq, 7);
  golden.U32(0);  // shard
  golden.U64(3);  // epoch
  golden.U8(1);   // kind: sparse
  golden.U64(2);  // nnz
  golden.U64(4);
  golden.F64(0.5);
  golden.U64(9);
  golden.F64(-2.0);
  EXPECT_EQ(EncodeFrame(req, 7), golden.Finish());
}

// Quantization-idempotent doubles (what GradientCodec::Transform emits) must
// survive a coded round trip bit-exactly, and re-encoding the decoded
// message must reproduce the identical frame (the retry path re-encodes).
TEST(WireCodecTest, CodedInt8DensePushRoundTripsBitExact) {
  PushShardReq req;
  req.shard = 2;
  req.epoch = 11;
  req.sparse = false;
  req.coded = static_cast<std::uint8_t>(CodecKind::kInt8);
  req.dense_offset = 32;
  req.dense = {3.25, -0.5, 0.0, 100.0, -127.0};
  const double scale = Int8ScaleFor(req.dense);
  for (double& v : req.dense) {
    v = DequantizeInt8(QuantizeInt8(v, scale), scale);
  }

  const auto frame = EncodeFrame(req, 5);
  std::uint64_t id = 0;
  WireMessage out;
  ASSERT_EQ(DecodeFrame(frame, id, out), WireStatus::kOk);
  const auto& decoded = std::get<PushShardReq>(out);
  EXPECT_EQ(decoded.coded, req.coded);
  EXPECT_EQ(decoded.dense_offset, 32u);
  EXPECT_EQ(decoded.dense, req.dense);
  EXPECT_EQ(EncodeFrame(decoded, 5), frame);
  // The coded frame is materially smaller than the f64 encoding.
  PushShardReq raw = req;
  raw.coded = 0;
  EXPECT_LT(frame.size(), EncodeFrame(raw, 5).size());
}

TEST(WireCodecTest, CodedFp16SparsePushRoundTripsBitExact) {
  PushShardReq req;
  req.shard = 0;
  req.epoch = 4;
  req.sparse = true;
  req.coded = static_cast<std::uint8_t>(CodecKind::kFp16);
  req.indices = {1, 6, 13};
  req.values = {1.5, -0.0, 65504.0};
  for (double& v : req.values) v = DecodeFp16(EncodeFp16(v));

  const auto frame = EncodeFrame(req, 6);
  std::uint64_t id = 0;
  WireMessage out;
  ASSERT_EQ(DecodeFrame(frame, id, out), WireStatus::kOk);
  const auto& decoded = std::get<PushShardReq>(out);
  EXPECT_EQ(decoded.coded, req.coded);
  EXPECT_EQ(decoded.indices, req.indices);
  ASSERT_EQ(decoded.values.size(), req.values.size());
  for (std::size_t i = 0; i < req.values.size(); ++i) {
    std::uint64_t got = 0;
    std::uint64_t want = 0;
    std::memcpy(&got, &decoded.values[i], sizeof(got));
    std::memcpy(&want, &req.values[i], sizeof(want));
    EXPECT_EQ(got, want) << "entry " << i;  // -0.0 must keep its sign bit
  }
  EXPECT_EQ(EncodeFrame(decoded, 6), frame);
}

TEST(WireCodecTest, CodedAllZeroInt8PushCarriesZeroScale) {
  PushShardReq req;
  req.coded = static_cast<std::uint8_t>(CodecKind::kInt8);
  req.dense = {0.0, 0.0};
  const auto frame = EncodeFrame(req, 8);
  std::uint64_t id = 0;
  WireMessage out;
  ASSERT_EQ(DecodeFrame(frame, id, out), WireStatus::kOk);
  EXPECT_EQ(std::get<PushShardReq>(out).dense,
            std::vector<double>({0.0, 0.0}));
}

TEST(WireCodecTest, TruncatedCodedPushRejected) {
  PushShardReq req;
  req.coded = static_cast<std::uint8_t>(CodecKind::kFp16);
  req.dense = {1.0, 2.0, 3.0};
  const auto frame = EncodeFrame(req, 1);
  FrameHeader header;
  ASSERT_EQ(DecodeHeader(frame, header), WireStatus::kOk);
  const std::span<const std::uint8_t> payload =
      std::span(frame).subspan(kHeaderBytes);
  WireMessage out;
  // One byte short: the last fp16 value is torn.
  EXPECT_EQ(DecodePayload(header, payload.first(payload.size() - 1), out),
            WireStatus::kTruncated);
}

TEST(WireCodecTest, DeltaPullMessagesRoundTrip) {
  const PullShardDeltaReq req = RoundTrip(PullShardDeltaReq{5, 77});
  EXPECT_EQ(req.shard, 5u);
  EXPECT_EQ(req.known_version, 77u);

  const PullShardNotModified resp =
      RoundTrip(PullShardNotModified{5, 77, 130});
  EXPECT_EQ(resp.shard, 5u);
  EXPECT_EQ(resp.shard_version, 77u);
  EXPECT_EQ(resp.global_version, 130u);
}

TEST(WireCodecTest, DeltaPullFrameBytesPinned) {
  GoldenFrame golden;
  golden.Header(MsgType::kPullShardDeltaReq, 21);
  golden.U32(5);   // shard
  golden.U64(77);  // known_version
  EXPECT_EQ(EncodeFrame(PullShardDeltaReq{5, 77}, 21), golden.Finish());
}

}  // namespace
}  // namespace specsync::net
