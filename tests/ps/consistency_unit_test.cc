// Direct unit coverage for the consistency-controller family: the exact SSP
// admission boundary (table-driven — this pins the semantics the header
// documents), per-shard gating (write sets, clocks, crash excusal), and the
// dynamic staleness retune rule with its audit trail. Randomized-schedule
// coverage lives in consistency_property_test.cc.

#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "obs/audit_log.h"
#include "ps/consistency.h"

namespace specsync {
namespace {

SimTime Ms(double ms) { return SimTime::FromSeconds(ms / 1000.0); }

// --- the SSP boundary, row by row -------------------------------------------

TEST(SspBoundaryTest, AdmissionTableMatchesDocumentedSemantics) {
  // A worker may start iteration t (0-based) iff t <= MinProgress() + s.
  // Each row drives worker 0 to `t` completed iterations and worker 1 to
  // `slowest` (so MinProgress() == slowest), then asks about iteration t.
  struct Row {
    std::uint64_t staleness;
    std::uint64_t t;        // iteration worker 0 wants to start
    std::uint64_t slowest;  // worker 1's completed count (<= t)
    bool allowed;
  };
  const Row rows[] = {
      // s = 0 (BSP): lockstep.
      {0, 0, 0, true},   // first iteration is always admissible
      {0, 1, 0, false},  // t = min + s + 1: first blocked case
      {0, 1, 1, true},   // everyone pushed 0 -> 1 may start
      {0, 2, 1, false},
      // s = 1: one iteration of slack.
      {1, 1, 0, true},
      {1, 2, 0, false},  // t - s - 1 = 0 not yet pushed by the slowest
      {1, 2, 1, true},
      // s = 2.
      {2, 2, 0, true},
      {2, 3, 0, false},
      {2, 3, 1, true},
      // s = 3.
      {3, 3, 0, true},
      {3, 4, 0, false},
  };
  for (const Row& row : rows) {
    SspController ssp(2, row.staleness);
    for (std::uint64_t i = 0; i < row.t; ++i) ssp.OnPush(0, i);
    for (std::uint64_t i = 0; i < row.slowest; ++i) ssp.OnPush(1, i);
    ASSERT_EQ(ssp.MinProgress(), row.slowest);
    EXPECT_EQ(ssp.MayStart(0, row.t), row.allowed)
        << "s=" << row.staleness << " t=" << row.t
        << " slowest=" << row.slowest;
  }
}

TEST(SspBoundaryTest, ObservedSkewCanReachStalenessPlusOne) {
  // The admitted-at-the-boundary worker finishes its iteration while the
  // slowest still sits at c: completed-count skew s + 1 is reachable, and
  // exactly s + 1 (the next start is denied).
  constexpr std::uint64_t kStaleness = 2;
  SspController ssp(2, kStaleness);
  for (std::uint64_t i = 0; i <= kStaleness; ++i) {
    ASSERT_TRUE(ssp.MayStart(0, i));
    ssp.OnPush(0, i);
  }
  EXPECT_EQ(ssp.MinProgress(), 0u);  // worker 1 never pushed
  EXPECT_FALSE(ssp.MayStart(0, kStaleness + 1));
}

// --- per-shard SSP -----------------------------------------------------------

TEST(PerShardSspTest, DisjointWriteSetsNeverGateEachOther) {
  // Worker 0 writes shard 0 only, worker 1 writes shard 1 only: under a
  // global bound of 0 they would run in lockstep; per-shard they are
  // independent.
  PerShardSspController pssp(2, 2, 0);
  pssp.SetWriteSet(0, {0});
  pssp.SetWriteSet(1, {1});
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(pssp.MayStart(0, i)) << "iteration " << i;
    pssp.OnPush(0, i);
  }
  EXPECT_EQ(pssp.completed(0), 10u);
  EXPECT_EQ(pssp.completed(1), 0u);
  EXPECT_TRUE(pssp.MayStart(1, 0));
}

TEST(PerShardSspTest, SharedShardEnforcesTheBound) {
  PerShardSspController pssp(2, 2, 1);
  pssp.SetWriteSet(0, {0, 1});
  pssp.SetWriteSet(1, {1});
  // Worker 0 is gated on shard 1 (shared with worker 1) once it runs more
  // than s = 1 ahead of worker 1's clock there.
  ASSERT_TRUE(pssp.MayStart(0, 0));
  pssp.OnPush(0, 0);
  ASSERT_TRUE(pssp.MayStart(0, 1));
  pssp.OnPush(0, 1);
  EXPECT_FALSE(pssp.MayStart(0, 2));
  EXPECT_EQ(pssp.FirstBlockingShard(0, 2), std::optional<std::size_t>(1));
  pssp.OnPush(1, 0);
  EXPECT_TRUE(pssp.MayStart(0, 2));
  EXPECT_EQ(pssp.FirstBlockingShard(0, 2), std::nullopt);
}

TEST(PerShardSspTest, DeclaredDenseWriteSetsDegenerateToGlobalSsp) {
  constexpr std::uint64_t kStaleness = 2;
  PerShardSspController pssp(3, 4, kStaleness);
  SspController ssp(3, kStaleness);
  // With every write set declared as all shards, each worker's shard clocks
  // equal its completed count from the start — including workers that have
  // not pushed yet, which learned sets would leave out of the min. Decisions
  // must then match global SSP exactly at every probe point.
  for (WorkerId w = 0; w < 3; ++w) pssp.SetWriteSet(w, {0, 1, 2, 3});
  const WorkerId pushers[] = {0, 0, 1, 0, 2, 1, 0, 2};
  std::uint64_t completed[3] = {0, 0, 0};
  for (WorkerId w : pushers) {
    for (WorkerId probe = 0; probe < 3; ++probe) {
      ASSERT_EQ(pssp.MayStart(probe, completed[probe]),
                ssp.MayStart(probe, completed[probe]));
    }
    if (!ssp.MayStart(w, completed[w])) continue;
    pssp.OnPush(w, completed[w]);  // scalar OnPush = dense
    ssp.OnPush(w, completed[w]);
    ++completed[w];
  }
}

TEST(PerShardSspTest, WriteSetsAreLearnedFromPushes) {
  PerShardSspController pssp(2, 3, 0);
  EXPECT_FALSE(pssp.writes(0, 0));
  // An un-learned worker is ungated (its write set is empty).
  EXPECT_TRUE(pssp.MayStart(0, 5));

  const std::vector<std::size_t> first = {1};
  pssp.OnPushAt(0, 0, Ms(1), first);
  EXPECT_FALSE(pssp.writes(0, 0));
  EXPECT_TRUE(pssp.writes(0, 1));
  EXPECT_EQ(pssp.clock(0, 1), 1u);

  // Learning only grows the set; a later push touching shard 2 adds it and
  // the whole set's clocks advance together.
  const std::vector<std::size_t> second = {2};
  pssp.OnPushAt(0, 1, Ms(2), second);
  EXPECT_TRUE(pssp.writes(0, 1));
  EXPECT_TRUE(pssp.writes(0, 2));
  EXPECT_EQ(pssp.clock(0, 1), 2u);
  EXPECT_EQ(pssp.clock(0, 2), 2u);

  // Empty touched set = dense.
  pssp.OnPushAt(0, 2, Ms(3), {});
  EXPECT_TRUE(pssp.writes(0, 0));
  EXPECT_EQ(pssp.clock(0, 0), 3u);
}

TEST(PerShardSspTest, CrashExcusesAndRejoinReinstates) {
  PerShardSspController pssp(2, 1, 0);
  pssp.OnPush(0, 0);  // both learn dense sets
  pssp.OnPush(1, 0);
  pssp.OnPush(0, 1);
  EXPECT_FALSE(pssp.MayStart(0, 2));  // worker 1 sits at 1
  pssp.OnWorkerDown(1);
  EXPECT_FALSE(pssp.live(1));
  EXPECT_TRUE(pssp.MayStart(0, 2));  // the corpse no longer pins the min
  pssp.OnWorkerUp(1);
  EXPECT_FALSE(pssp.MayStart(0, 2));  // back at its old clock: bound holds
  EXPECT_EQ(pssp.MinShardClock(0), std::optional<std::uint64_t>(1));
}

TEST(PerShardSspTest, OutOfOrderPushThrows) {
  PerShardSspController pssp(2, 2, 1);
  pssp.OnPush(0, 0);
  EXPECT_THROW(pssp.OnPush(0, 0), CheckError);  // duplicate
  EXPECT_THROW(pssp.OnPush(1, 3), CheckError);  // skipped ahead
}

// --- dynamic SSP -------------------------------------------------------------

DynamicSspConfig UnsmoothedConfig() {
  DynamicSspConfig config;
  config.initial_staleness = 0;
  config.min_staleness = 0;
  config.max_staleness = 8;
  config.ewma = 1.0;  // no smoothing: the epoch ratio is the ratio
  config.headroom = 1.0;
  return config;
}

// Drives two epochs of a 4x straggler: worker 0 pushes every 10 ms, worker 1
// every 40 ms. The first epoch evaluation (at worker 1's first push) has only
// one measured worker, so the bound holds; the second has both and retunes to
// ceil(4 - 1) = 3.
void DriveTwoEpochs(DynamicSspController& d) {
  d.OnPushAt(0, 0, Ms(10), {});
  d.OnPushAt(0, 1, Ms(20), {});
  d.OnPushAt(0, 2, Ms(30), {});
  d.OnPushAt(0, 3, Ms(40), {});
  d.OnPushAt(1, 0, Ms(40), {});
  ASSERT_EQ(d.retunes(), 0u);
  ASSERT_EQ(d.staleness(), 0u);
  d.OnPushAt(0, 4, Ms(50), {});
  d.OnPushAt(0, 5, Ms(60), {});
  d.OnPushAt(0, 6, Ms(70), {});
  d.OnPushAt(0, 7, Ms(80), {});
  d.OnPushAt(1, 1, Ms(80), {});
}

TEST(DynamicSspTest, RetunesBoundFromStragglerRatio) {
  DynamicSspController d(2, 1, UnsmoothedConfig());
  DriveTwoEpochs(d);
  EXPECT_EQ(d.retunes(), 1u);
  EXPECT_EQ(d.staleness(), 3u);  // ceil(1.0 * (4 - 1))
  EXPECT_DOUBLE_EQ(d.smoothed_ratio(), 4.0);
}

TEST(DynamicSspTest, BoundIsClampedToConfiguredRange) {
  DynamicSspConfig config = UnsmoothedConfig();
  config.max_staleness = 2;
  DynamicSspController d(2, 1, config);
  DriveTwoEpochs(d);
  EXPECT_EQ(d.staleness(), 2u);  // would be 3, clamped
}

TEST(DynamicSspTest, EqualSpeedsNeverRetune) {
  DynamicSspController d(2, 1, UnsmoothedConfig());
  for (std::uint64_t i = 0; i < 6; ++i) {
    d.OnPushAt(0, i, Ms(10.0 * static_cast<double>(i + 1)), {});
    d.OnPushAt(1, i, Ms(10.0 * static_cast<double>(i + 1)), {});
  }
  EXPECT_EQ(d.retunes(), 0u);
  EXPECT_EQ(d.staleness(), 0u);
}

TEST(DynamicSspTest, EwmaSmoothsAcrossEpochs) {
  DynamicSspConfig config = UnsmoothedConfig();
  config.ewma = 0.5;
  DynamicSspController d(2, 1, config);
  DriveTwoEpochs(d);
  // First measured epoch seeds the EWMA directly.
  ASSERT_DOUBLE_EQ(d.smoothed_ratio(), 4.0);
  ASSERT_EQ(d.staleness(), 3u);
  // Third epoch: both workers at 10 ms (ratio 1) -> smoothed 0.5*1 + 0.5*4.
  d.OnPushAt(0, 8, Ms(90), {});
  d.OnPushAt(1, 2, Ms(90), {});
  EXPECT_DOUBLE_EQ(d.smoothed_ratio(), 2.5);
  EXPECT_EQ(d.staleness(), 2u);  // ceil(1.5)
  EXPECT_EQ(d.retunes(), 2u);
}

TEST(DynamicSspTest, EachAdjustmentEmitsOneAuditRecord) {
  obs::DecisionAuditLog audit;
  DynamicSspController d(2, 1, UnsmoothedConfig());
  d.AttachAudit(&audit);
  DriveTwoEpochs(d);
  const auto retunes = audit.retunes();
  ASSERT_EQ(retunes.size(), 1u);
  EXPECT_EQ(retunes[0].kind, obs::RetuneKind::kStaleness);
  EXPECT_EQ(retunes[0].staleness, 3u);
  EXPECT_DOUBLE_EQ(retunes[0].straggler_ratio, 4.0);
  EXPECT_EQ(retunes[0].epoch, 2u);
  EXPECT_DOUBLE_EQ(retunes[0].at.seconds(), 0.080);
  EXPECT_EQ(retunes[0].epoch_pushes, 5u);  // second window: 4 + 1 pushes

  // Stable epochs adjust nothing and so log nothing: one record per
  // *adjustment*, not per evaluation.
  d.OnPushAt(0, 8, Ms(120), {});
  d.OnPushAt(0, 9, Ms(160), {});
  d.OnPushAt(0, 10, Ms(200), {});
  d.OnPushAt(0, 11, Ms(240), {});
  d.OnPushAt(1, 2, Ms(240), {});  // ratio 4 again: bound already 3
  EXPECT_EQ(d.retunes(), 1u);
  EXPECT_EQ(audit.retunes().size(), 1u);
}

TEST(DynamicSspTest, StragglerDepartureRelaxesTheBound) {
  // With the straggler down, the remaining workers are homogeneous: the
  // next epochs see ratio 1 and the bound relaxes back to min.
  DynamicSspController d(3, 1, UnsmoothedConfig());
  // Two epochs with worker 2 pushing at half the others' rate.
  d.OnPushAt(0, 0, Ms(10), {});
  d.OnPushAt(0, 1, Ms(20), {});
  d.OnPushAt(1, 0, Ms(10), {});
  d.OnPushAt(1, 1, Ms(20), {});
  d.OnPushAt(2, 0, Ms(40), {});
  d.OnPushAt(0, 2, Ms(50), {});
  d.OnPushAt(0, 3, Ms(60), {});
  d.OnPushAt(1, 2, Ms(50), {});
  d.OnPushAt(1, 3, Ms(60), {});
  d.OnPushAt(2, 1, Ms(80), {});  // ratio 2 measured: bound rises to 1
  ASSERT_GT(d.staleness(), 0u);
  d.OnWorkerDown(2);
  // Interleaved equal-speed pushes among the live pair: the first symmetric
  // epoch window sees ratio 1 and the bound drops back.
  std::uint64_t it = 4;
  for (double t = 90.0; t < 130.0; t += 10.0, ++it) {
    d.OnPushAt(0, it, Ms(t), {});
    d.OnPushAt(1, it, Ms(t), {});
  }
  EXPECT_EQ(d.staleness(), 0u);
}

TEST(ControllerFactoryTest, PerShardFamilyNames) {
  EXPECT_EQ(MakePerShardSsp(2, 4, 3)->name(), "PSSP(s=3,shards=4)");
  EXPECT_EQ(MakeDynamicSsp(2, 4)->name(), "DSSP(s=3,shards=4)");
}

}  // namespace
}  // namespace specsync
