// Tests for the parameter server and the ASP/BSP/SSP consistency controllers.
#include <gtest/gtest.h>

#include <numeric>

#include "common/check.h"
#include "data/synthetic.h"
#include "models/softmax_regression.h"
#include "ps/consistency.h"
#include "ps/param_store.h"

namespace specsync {
namespace {

std::shared_ptr<const SgdApplier> UnitApplier() {
  return std::make_shared<SgdApplier>(std::make_shared<ConstantSchedule>(1.0));
}

TEST(ParamStoreTest, ShardPartitioning) {
  ParameterServer server(10, 3, UnitApplier());
  EXPECT_EQ(server.num_shards(), 3u);
  EXPECT_EQ(server.shard(0).offset, 0u);
  EXPECT_EQ(server.shard(0).length, 4u);
  EXPECT_EQ(server.shard(1).offset, 4u);
  EXPECT_EQ(server.shard(1).length, 3u);
  EXPECT_EQ(server.shard(2).offset, 7u);
  EXPECT_EQ(server.shard(2).length, 3u);
  EXPECT_THROW(server.shard(3), CheckError);
}

TEST(ParamStoreTest, TooManyShardsThrows) {
  EXPECT_THROW(ParameterServer(2, 3, UnitApplier()), CheckError);
}

TEST(ParamStoreTest, PushAppliesAndBumpsVersion) {
  ParameterServer server(3, 1, UnitApplier());
  server.SetParams({1.0, 1.0, 1.0});
  EXPECT_EQ(server.version(), 0u);
  Gradient g = Gradient::Dense(3);
  g.dense() = {0.5, 0.0, -0.5};
  EXPECT_EQ(server.Push(g, 0), 1u);
  const PullResult pulled = server.Pull();
  EXPECT_EQ(pulled.version, 1u);
  EXPECT_EQ(pulled.params, (std::vector<double>{0.5, 1.0, 1.5}));
}

TEST(ParamStoreTest, PullIsSnapshotNotReference) {
  ParameterServer server(2, 1, UnitApplier());
  server.SetParams({0.0, 0.0});
  PullResult before = server.Pull();
  Gradient g = Gradient::Dense(2);
  g.dense() = {1.0, 1.0};
  server.Push(g, 0);
  EXPECT_EQ(before.params, (std::vector<double>{0.0, 0.0}));
}

TEST(ParamStoreTest, SparsePushTouchesOnlyItsShards) {
  ParameterServer server(10, 2, UnitApplier());  // shards [0,5), [5,10)
  Gradient g = Gradient::Sparse();
  g.sparse().Add(7, 1.0);
  server.Push(g, 0);
  EXPECT_EQ(server.shard(0).version, 0u);
  EXPECT_EQ(server.shard(1).version, 1u);
  // Dense pushes touch everything.
  Gradient d = Gradient::Dense(10);
  server.Push(d, 0);
  EXPECT_EQ(server.shard(0).version, 1u);
  EXPECT_EQ(server.shard(1).version, 2u);
  EXPECT_EQ(server.version(), 2u);
}

TEST(ParamStoreTest, InitializeUsesModel) {
  Rng data_rng(1);
  ClassificationSpec spec;
  spec.num_examples = 10;
  spec.feature_dim = 4;
  spec.num_classes = 2;
  auto data = std::make_shared<ClassificationDataset>(
      GenerateClassification(spec, data_rng));
  SoftmaxRegressionModel model(data, {});
  ParameterServer server(model.param_dim(), 2, UnitApplier());
  Rng init_rng(2);
  server.Initialize(model, init_rng);
  const auto snapshot = server.Snapshot();
  // Not all zeros after init.
  double sum_abs = 0.0;
  for (double v : snapshot) sum_abs += std::abs(v);
  EXPECT_GT(sum_abs, 0.0);
  EXPECT_EQ(server.version(), 0u);
}

TEST(ParamStoreTest, PullBytes) {
  ParameterServer server(100, 4, UnitApplier());
  EXPECT_EQ(server.pull_bytes(), 800u);
}

// --- consistency controllers -------------------------------------------------

TEST(AspControllerTest, AlwaysAllows) {
  AspController asp(3);
  EXPECT_TRUE(asp.MayStart(0, 0));
  EXPECT_TRUE(asp.MayStart(2, 1000));
  EXPECT_EQ(asp.name(), "ASP");
}

TEST(BspControllerTest, BarriersEachIteration) {
  BspController bsp(2);
  // Everyone may start iteration 0.
  EXPECT_TRUE(bsp.MayStart(0, 0));
  EXPECT_TRUE(bsp.MayStart(1, 0));
  bsp.OnPush(0, 0);
  // Worker 0 finished iteration 0 but worker 1 has not: 0 must wait.
  EXPECT_FALSE(bsp.MayStart(0, 1));
  bsp.OnPush(1, 0);
  EXPECT_TRUE(bsp.MayStart(0, 1));
  EXPECT_TRUE(bsp.MayStart(1, 1));
}

TEST(SspControllerTest, BoundedStaleness) {
  SspController ssp(2, 2);
  EXPECT_EQ(ssp.name(), "SSP(s=2)");
  // Worker 0 may run up to 2 iterations ahead of the slowest.
  EXPECT_TRUE(ssp.MayStart(0, 0));
  ssp.OnPush(0, 0);
  EXPECT_TRUE(ssp.MayStart(0, 1));
  ssp.OnPush(0, 1);
  EXPECT_TRUE(ssp.MayStart(0, 2));
  ssp.OnPush(0, 2);
  EXPECT_FALSE(ssp.MayStart(0, 3));  // 3 > 0 (min) + 2
  ssp.OnPush(1, 0);
  EXPECT_TRUE(ssp.MayStart(0, 3));
  EXPECT_EQ(ssp.MinProgress(), 1u);
}

TEST(SspControllerTest, OutOfOrderPushThrows) {
  SspController ssp(2, 1);
  ssp.OnPush(0, 0);
  EXPECT_THROW(ssp.OnPush(0, 0), CheckError);  // duplicate
  EXPECT_THROW(ssp.OnPush(1, 3), CheckError);  // skipped ahead
}

TEST(ControllerFactoryTest, MakesExpectedTypes) {
  EXPECT_EQ(MakeAsp(2)->name(), "ASP");
  EXPECT_EQ(MakeBsp(2)->name(), "BSP");
  EXPECT_EQ(MakeSsp(2, 5)->name(), "SSP(s=5)");
}

// BSP == SSP(0) equivalence property over a random schedule.
TEST(ControllerEquivalenceTest, BspEqualsSspZero) {
  BspController bsp(3);
  SspController ssp0(3, 0);
  Rng rng(5);
  std::vector<IterationId> next(3, 0);
  for (int step = 0; step < 200; ++step) {
    const WorkerId w = static_cast<WorkerId>(rng.Index(3));
    EXPECT_EQ(bsp.MayStart(w, next[w]), ssp0.MayStart(w, next[w]));
    if (bsp.MayStart(w, next[w])) {
      bsp.OnPush(w, next[w]);
      ssp0.OnPush(w, next[w]);
      ++next[w];
    }
  }
}

}  // namespace
}  // namespace specsync
