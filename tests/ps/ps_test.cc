// Tests for the parameter server and the ASP/BSP/SSP consistency controllers.
#include <gtest/gtest.h>

#include <numeric>

#include "common/check.h"
#include "data/synthetic.h"
#include "models/softmax_regression.h"
#include "ps/consistency.h"
#include "ps/param_store.h"

namespace specsync {
namespace {

std::shared_ptr<const SgdApplier> UnitApplier() {
  return std::make_shared<SgdApplier>(std::make_shared<ConstantSchedule>(1.0));
}

TEST(ParamStoreTest, ShardPartitioning) {
  ParameterServer server(10, 3, UnitApplier());
  EXPECT_EQ(server.num_shards(), 3u);
  EXPECT_EQ(server.shard(0).offset, 0u);
  EXPECT_EQ(server.shard(0).length, 4u);
  EXPECT_EQ(server.shard(1).offset, 4u);
  EXPECT_EQ(server.shard(1).length, 3u);
  EXPECT_EQ(server.shard(2).offset, 7u);
  EXPECT_EQ(server.shard(2).length, 3u);
  EXPECT_THROW(server.shard(3), CheckError);
}

TEST(ParamStoreTest, TooManyShardsThrows) {
  EXPECT_THROW(ParameterServer(2, 3, UnitApplier()), CheckError);
}

TEST(ParamStoreTest, PushAppliesAndBumpsVersion) {
  ParameterServer server(3, 1, UnitApplier());
  server.SetParams({1.0, 1.0, 1.0});
  EXPECT_EQ(server.version(), 0u);
  Gradient g = Gradient::Dense(3);
  g.dense() = {0.5, 0.0, -0.5};
  EXPECT_EQ(server.Push(g, 0), 1u);
  const PullResult pulled = server.Pull();
  EXPECT_EQ(pulled.version, 1u);
  EXPECT_EQ(pulled.params, (std::vector<double>{0.5, 1.0, 1.5}));
}

TEST(ParamStoreTest, PullIsSnapshotNotReference) {
  ParameterServer server(2, 1, UnitApplier());
  server.SetParams({0.0, 0.0});
  PullResult before = server.Pull();
  Gradient g = Gradient::Dense(2);
  g.dense() = {1.0, 1.0};
  server.Push(g, 0);
  EXPECT_EQ(before.params, (std::vector<double>{0.0, 0.0}));
}

TEST(ParamStoreTest, SparsePushTouchesOnlyItsShards) {
  ParameterServer server(10, 2, UnitApplier());  // shards [0,5), [5,10)
  Gradient g = Gradient::Sparse();
  g.sparse().Add(7, 1.0);
  server.Push(g, 0);
  EXPECT_EQ(server.shard(0).version, 0u);
  EXPECT_EQ(server.shard(1).version, 1u);
  // Dense pushes touch everything.
  Gradient d = Gradient::Dense(10);
  server.Push(d, 0);
  EXPECT_EQ(server.shard(0).version, 1u);
  EXPECT_EQ(server.shard(1).version, 2u);
  EXPECT_EQ(server.version(), 2u);
}

TEST(ParamStoreTest, PullShardReturnsInternallyConsistentSlice) {
  ParameterServer server(10, 3, UnitApplier());  // lengths 4, 3, 3
  DenseVector params(10);
  std::iota(params.begin(), params.end(), 0.0);
  server.SetParams(std::move(params));
  const ShardPullResult pulled = server.PullShard(1);
  EXPECT_EQ(pulled.offset, 4u);
  EXPECT_EQ(pulled.params, (std::vector<double>{4.0, 5.0, 6.0}));
  EXPECT_EQ(pulled.shard_version, 0u);
  EXPECT_EQ(pulled.version, 0u);
  EXPECT_THROW(server.PullShard(3), CheckError);
}

TEST(ParamStoreTest, ShardOfMapsIndicesToOwners) {
  ParameterServer server(10, 3, UnitApplier());  // [0,4) [4,7) [7,10)
  EXPECT_EQ(server.ShardOf(0), 0u);
  EXPECT_EQ(server.ShardOf(3), 0u);
  EXPECT_EQ(server.ShardOf(4), 1u);
  EXPECT_EQ(server.ShardOf(6), 1u);
  EXPECT_EQ(server.ShardOf(7), 2u);
  EXPECT_EQ(server.ShardOf(9), 2u);
  EXPECT_THROW(server.ShardOf(10), CheckError);
}

TEST(ParamStoreTest, RouteGradientDenseHitsEveryShard) {
  ParameterServer server(10, 3, UnitApplier());
  Gradient g = Gradient::Dense(10);
  const auto routes = server.RouteGradient(g);
  ASSERT_EQ(routes.size(), 3u);
  EXPECT_EQ(routes[0].shard, 0u);
  EXPECT_EQ(routes[0].bytes, 4u * sizeof(double));
  EXPECT_EQ(routes[1].bytes, 3u * sizeof(double));
  EXPECT_EQ(routes[2].bytes, 3u * sizeof(double));
}

TEST(ParamStoreTest, RouteGradientSparseHitsOnlyOwningShards) {
  ParameterServer server(10, 3, UnitApplier());  // [0,4) [4,7) [7,10)
  Gradient g = Gradient::Sparse();
  g.sparse().Add(1, 1.0);
  g.sparse().Add(2, 1.0);
  g.sparse().Add(8, 1.0);
  const auto routes = server.RouteGradient(g);
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_EQ(routes[0].shard, 0u);
  EXPECT_EQ(routes[0].bytes, 2u * 16u);  // two (index, value) entries
  EXPECT_EQ(routes[1].shard, 2u);
  EXPECT_EQ(routes[1].bytes, 16u);
}

TEST(ParamStoreTest, RouteGradientEmptyStillSendsOneMessage) {
  // An empty push must remain one logical push (one wire message, one
  // version bump), not silently vanish from the protocol.
  ParameterServer server(10, 3, UnitApplier());
  Gradient g = Gradient::Sparse();
  const auto routes = server.RouteGradient(g);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].shard, 0u);
  EXPECT_EQ(routes[0].bytes, 0u);
}

TEST(ParamStoreTest, PushShardAppliesSliceWithoutCommitting) {
  ParameterServer server(10, 2, UnitApplier());  // [0,5) [5,10)
  server.SetParams(DenseVector(10, 0.0));
  Gradient g = Gradient::Dense(10);
  for (double& v : g.dense()) v = -1.0;  // each apply adds +1
  EXPECT_TRUE(server.PushShard(0, g, 0));
  // The slice landed, but no logical push committed yet.
  EXPECT_EQ(server.version(), 0u);
  EXPECT_EQ(server.shard(0).version, 1u);
  EXPECT_EQ(server.shard(1).version, 0u);
  const PullResult mid = server.Pull();
  EXPECT_DOUBLE_EQ(mid.params[0], 1.0);
  EXPECT_DOUBLE_EQ(mid.params[5], 0.0);  // other shard untouched

  EXPECT_TRUE(server.PushShard(1, g, 0));
  EXPECT_EQ(server.CommitPush(), 1u);
  EXPECT_EQ(server.version(), 1u);

  // A duplicated slice (network replay) re-applies without a new commit.
  EXPECT_TRUE(server.PushShard(0, g, 0));
  EXPECT_EQ(server.version(), 1u);
  EXPECT_EQ(server.shard(0).version, 2u);
}

TEST(ParamStoreTest, PushShardSkipsForeignSparseEntries) {
  ParameterServer server(10, 2, UnitApplier());  // [0,5) [5,10)
  server.SetParams(DenseVector(10, 0.0));
  Gradient g = Gradient::Sparse();
  g.sparse().Add(7, -1.0);
  // Shard 0 owns none of the entries: nothing applies, no version bump.
  EXPECT_FALSE(server.PushShard(0, g, 0));
  EXPECT_EQ(server.shard(0).version, 0u);
  EXPECT_TRUE(server.PushShard(1, g, 0));
  EXPECT_EQ(server.shard(1).version, 1u);
  const PullResult pulled = server.Pull();
  EXPECT_DOUBLE_EQ(pulled.params[7], 1.0);
}

// Regression for the version contract: version() counts logical pushes, not
// shard touches. A sparse push routed to one of four shards must advance the
// global counter by exactly 1 (it used to be easy to conflate the two).
TEST(ParamStoreTest, SparsePushBumpsGlobalVersionByOne) {
  ParameterServer server(16, 4, UnitApplier());
  Gradient narrow = Gradient::Sparse();
  narrow.sparse().Add(0, 1.0);
  EXPECT_EQ(server.Push(narrow, 0), 1u);
  EXPECT_EQ(server.version(), 1u);
  Gradient wide = Gradient::Dense(16);
  EXPECT_EQ(server.Push(wide, 0), 2u);
  EXPECT_EQ(server.version(), 2u);
  // Shard versions record touches: shard 0 saw both pushes, others only the
  // dense one.
  EXPECT_EQ(server.shard(0).version, 2u);
  EXPECT_EQ(server.shard(1).version, 1u);
  EXPECT_EQ(server.shard(3).version, 1u);
}

TEST(ParamStoreTest, ShardBytesCoverPullBytes) {
  ParameterServer server(10, 3, UnitApplier());
  std::size_t total = 0;
  for (std::size_t s = 0; s < server.num_shards(); ++s) {
    total += server.shard_bytes(s);
  }
  EXPECT_EQ(total, server.pull_bytes());
}

TEST(ParamStoreTest, InitializeUsesModel) {
  Rng data_rng(1);
  ClassificationSpec spec;
  spec.num_examples = 10;
  spec.feature_dim = 4;
  spec.num_classes = 2;
  auto data = std::make_shared<ClassificationDataset>(
      GenerateClassification(spec, data_rng));
  SoftmaxRegressionModel model(data, {});
  ParameterServer server(model.param_dim(), 2, UnitApplier());
  Rng init_rng(2);
  server.Initialize(model, init_rng);
  const auto snapshot = server.Snapshot();
  // Not all zeros after init.
  double sum_abs = 0.0;
  for (double v : snapshot) sum_abs += std::abs(v);
  EXPECT_GT(sum_abs, 0.0);
  EXPECT_EQ(server.version(), 0u);
}

TEST(ParamStoreTest, PullBytes) {
  ParameterServer server(100, 4, UnitApplier());
  EXPECT_EQ(server.pull_bytes(), 800u);
}

// --- consistency controllers -------------------------------------------------

TEST(AspControllerTest, AlwaysAllows) {
  AspController asp(3);
  EXPECT_TRUE(asp.MayStart(0, 0));
  EXPECT_TRUE(asp.MayStart(2, 1000));
  EXPECT_EQ(asp.name(), "ASP");
}

TEST(BspControllerTest, BarriersEachIteration) {
  BspController bsp(2);
  // Everyone may start iteration 0.
  EXPECT_TRUE(bsp.MayStart(0, 0));
  EXPECT_TRUE(bsp.MayStart(1, 0));
  bsp.OnPush(0, 0);
  // Worker 0 finished iteration 0 but worker 1 has not: 0 must wait.
  EXPECT_FALSE(bsp.MayStart(0, 1));
  bsp.OnPush(1, 0);
  EXPECT_TRUE(bsp.MayStart(0, 1));
  EXPECT_TRUE(bsp.MayStart(1, 1));
}

TEST(SspControllerTest, BoundedStaleness) {
  SspController ssp(2, 2);
  EXPECT_EQ(ssp.name(), "SSP(s=2)");
  // Worker 0 may run up to 2 iterations ahead of the slowest.
  EXPECT_TRUE(ssp.MayStart(0, 0));
  ssp.OnPush(0, 0);
  EXPECT_TRUE(ssp.MayStart(0, 1));
  ssp.OnPush(0, 1);
  EXPECT_TRUE(ssp.MayStart(0, 2));
  ssp.OnPush(0, 2);
  EXPECT_FALSE(ssp.MayStart(0, 3));  // 3 > 0 (min) + 2
  ssp.OnPush(1, 0);
  EXPECT_TRUE(ssp.MayStart(0, 3));
  EXPECT_EQ(ssp.MinProgress(), 1u);
}

TEST(SspControllerTest, OutOfOrderPushThrows) {
  SspController ssp(2, 1);
  ssp.OnPush(0, 0);
  EXPECT_THROW(ssp.OnPush(0, 0), CheckError);  // duplicate
  EXPECT_THROW(ssp.OnPush(1, 3), CheckError);  // skipped ahead
}

TEST(ControllerFactoryTest, MakesExpectedTypes) {
  EXPECT_EQ(MakeAsp(2)->name(), "ASP");
  EXPECT_EQ(MakeBsp(2)->name(), "BSP");
  EXPECT_EQ(MakeSsp(2, 5)->name(), "SSP(s=5)");
}

// BSP == SSP(0) equivalence property over a random schedule.
TEST(ControllerEquivalenceTest, BspEqualsSspZero) {
  BspController bsp(3);
  SspController ssp0(3, 0);
  Rng rng(5);
  std::vector<IterationId> next(3, 0);
  for (int step = 0; step < 200; ++step) {
    const WorkerId w = static_cast<WorkerId>(rng.Index(3));
    EXPECT_EQ(bsp.MayStart(w, next[w]), ssp0.MayStart(w, next[w]));
    if (bsp.MayStart(w, next[w])) {
      bsp.OnPush(w, next[w]);
      ssp0.OnPush(w, next[w]);
      ++next[w];
    }
  }
}

}  // namespace
}  // namespace specsync
