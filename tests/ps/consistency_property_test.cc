// Property-based consistency-controller harness.
//
// Each trial generates a random push/start schedule (a flat op list:
// worker steps with per-push shard masks and time deltas, plus crash /
// rejoin events for the crash-aware controllers), replays it against the
// controller under test, and checks every admission decision against an
// independently written reference model of the documented semantics:
//
//  * safety          — the controller never admits an iteration the bound
//                      forbids (decisions are checked exactly, so spurious
//                      blocks are caught too, not just unsafe admits);
//  * liveness        — after the schedule, a round-robin drain completes:
//                      no reachable state wedges the gate;
//  * gate equivalence— a ConsistencyGate (the runtime's wrapper, driven
//                      single-threaded) makes bit-identical decisions to the
//                      bare controller the sim calls.
//
// On failure the harness shrinks the op list to a minimal counterexample
// (greedy ddmin: drop chunks, halve the chunk) and prints it. A controller
// with a deliberately planted off-by-one staleness bound must be caught and
// shrunk to a hand-checkable handful of ops — that test doubles as a check
// that the harness itself has teeth.
//
// Schedules are seeded; set SPECSYNC_PROPERTY_SEED to reproduce or explore.

#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/sim_time.h"
#include "ps/consistency.h"
#include "ps/consistency_gate.h"

namespace specsync {
namespace {

std::uint64_t BaseSeed() {
  if (const char* env = std::getenv("SPECSYNC_PROPERTY_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260808;
}

// --- schedules ---------------------------------------------------------------

enum class OpKind { kStep, kCrash, kRejoin };

// One schedule event. kStep advances `worker`'s two-stage state machine: if
// idle, ask to start the next iteration (a denial is a no-op, which keeps
// every op list executable and makes shrinking well-defined); if started,
// push. `shard_mask` picks the shards the push touches (bit s = shard s;
// 0 = dense, every shard) so replay is deterministic under shrinking.
struct Op {
  OpKind kind = OpKind::kStep;
  WorkerId worker = 0;
  std::uint32_t shard_mask = 0;
  double delta_ms = 1.0;  // virtual time elapsing before this op
};

struct Schedule {
  std::size_t num_workers = 2;
  std::size_t num_shards = 1;
  std::uint64_t staleness = 0;
  std::uint64_t target_iterations = 3;  // per worker, for the drain phase
  std::vector<Op> ops;
};

Schedule GenerateSchedule(std::uint64_t seed, bool with_crashes) {
  Rng rng(seed);
  Schedule s;
  s.num_workers = 2 + rng.Index(4);       // 2..5
  s.num_shards = 1 + rng.Index(4);        // 1..4
  s.staleness = rng.Index(4);             // 0..3
  s.target_iterations = 2 + rng.Index(5); // 2..6
  const std::size_t len = 20 + rng.Index(101);  // 20..120 ops
  s.ops.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    Op op;
    op.worker = static_cast<WorkerId>(rng.Index(s.num_workers));
    op.delta_ms = 1.0 + static_cast<double>(rng.Index(50));
    const std::size_t roll = rng.Index(100);
    if (with_crashes && roll < 5) {
      op.kind = OpKind::kCrash;
    } else if (with_crashes && roll < 10) {
      op.kind = OpKind::kRejoin;
    } else {
      op.kind = OpKind::kStep;
      // Half the pushes are dense (mask 0), half touch a random non-empty
      // shard subset — exercising both the degenerate-to-SSP case and real
      // per-shard write sets in every schedule mix.
      if (rng.Index(2) == 1) {
        op.shard_mask = static_cast<std::uint32_t>(
            1 + rng.Index((1u << s.num_shards) - 1));
      }
    }
    s.ops.push_back(op);
  }
  return s;
}

std::string FormatOps(const Schedule& s) {
  std::ostringstream out;
  out << "workers=" << s.num_workers << " shards=" << s.num_shards
      << " staleness=" << s.staleness << " iters=" << s.target_iterations
      << " ops:";
  for (const Op& op : s.ops) {
    out << ' ';
    switch (op.kind) {
      case OpKind::kStep:
        out << 'W' << op.worker;
        if (op.shard_mask != 0) out << "/m" << op.shard_mask;
        break;
      case OpKind::kCrash:
        out << 'C' << op.worker;
        break;
      case OpKind::kRejoin:
        out << 'R' << op.worker;
        break;
    }
  }
  return out.str();
}

// --- reference model ---------------------------------------------------------

// Independent implementation of the documented controller semantics (see
// ps/consistency.h). Deliberately written as transparent nested loops; it
// shares no code with the controllers it judges.
struct RefModel {
  // kScalar: global SSP — min over every worker, crash-unaware (the pinned
  // legacy semantics). kPerShard: per-(worker, shard) clocks over live
  // writers, learned write sets. kAsp: always admit.
  enum class Kind { kAsp, kScalar, kPerShard };
  Kind kind;
  std::size_t num_workers;
  std::size_t num_shards;

  std::vector<std::uint64_t> completed;
  std::vector<std::vector<std::uint64_t>> clock;  // [worker][shard]
  std::vector<std::vector<char>> writes;          // [worker][shard]
  std::vector<char> live;

  RefModel(Kind kind_in, std::size_t workers, std::size_t shards)
      : kind(kind_in),
        num_workers(workers),
        num_shards(shards),
        completed(workers, 0),
        clock(workers, std::vector<std::uint64_t>(shards, 0)),
        writes(workers, std::vector<char>(shards, 0)),
        live(workers, 1) {}

  bool Admissible(WorkerId w, IterationId t, std::uint64_t bound) const {
    if (kind == Kind::kAsp) return true;
    if (kind == Kind::kScalar) {
      std::uint64_t min = completed[0];
      for (std::size_t i = 1; i < num_workers; ++i) {
        min = std::min(min, completed[i]);
      }
      return t <= min + bound;
    }
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (!writes[w][s]) continue;
      std::optional<std::uint64_t> min;
      for (std::size_t i = 0; i < num_workers; ++i) {
        if (!live[i] || !writes[i][s]) continue;
        min = min.has_value() ? std::min(*min, clock[i][s]) : clock[i][s];
      }
      if (min.has_value() && t > *min + bound) return false;
    }
    return true;  // empty write set (or unwritten shards) gates nothing
  }

  void OnPush(WorkerId w, std::uint32_t shard_mask) {
    ++completed[w];
    if (kind != Kind::kPerShard) return;
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (shard_mask == 0 || (shard_mask >> s) & 1u) writes[w][s] = 1;
    }
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (writes[w][s]) clock[w][s] = completed[w];
    }
  }
};

// --- execution ---------------------------------------------------------------

enum class Verdict { kOk, kDecisionMismatch, kLiveness };

struct RunOutcome {
  Verdict verdict = Verdict::kOk;
  std::string detail;
  std::uint64_t starts = 0;
  std::uint64_t denials = 0;
};

struct Subject {
  std::unique_ptr<ConsistencyController> controller;
  RefModel::Kind ref_kind;
  bool crash_aware = false;  // route Crash/Rejoin ops to the controller
  // Reads the bound in force before each decision (DSSP retunes between
  // pushes; the reference is parametric in the current bound).
  std::function<std::uint64_t(const ConsistencyController&)> bound;
};

using SubjectFactory = std::function<Subject(const Schedule&)>;

std::vector<std::size_t> MaskToShards(std::uint32_t mask,
                                      std::size_t num_shards) {
  std::vector<std::size_t> shards;
  if (mask == 0) return shards;  // empty span = dense, by convention
  for (std::size_t s = 0; s < num_shards; ++s) {
    if ((mask >> s) & 1u) shards.push_back(s);
  }
  return shards;
}

RunOutcome RunSchedule(const Schedule& schedule, const SubjectFactory& make) {
  Subject subject = make(schedule);
  ConsistencyController& controller = *subject.controller;
  RefModel ref(subject.ref_kind, schedule.num_workers, schedule.num_shards);
  std::vector<char> started(schedule.num_workers, 0);
  RunOutcome out;
  SimTime now = SimTime::Zero();

  const auto mismatch = [&](std::size_t op_index, WorkerId w, IterationId t,
                            bool got, bool want, std::uint64_t bound) {
    std::ostringstream msg;
    msg << "op " << op_index << ": worker " << w << " start of iteration "
        << t << " — controller says " << (got ? "admit" : "block")
        << ", reference (bound " << bound << ") says "
        << (want ? "admit" : "block");
    out.verdict = Verdict::kDecisionMismatch;
    out.detail = msg.str();
  };

  for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
    const Op& op = schedule.ops[i];
    now = now + Duration::Milliseconds(op.delta_ms);
    const WorkerId w = op.worker;
    switch (op.kind) {
      case OpKind::kCrash:
        if (!ref.live[w]) break;
        ref.live[w] = 0;
        started[w] = 0;  // mid-iteration work dies with the worker
        if (subject.crash_aware) controller.OnWorkerDown(w);
        break;
      case OpKind::kRejoin:
        if (ref.live[w]) break;
        ref.live[w] = 1;
        if (subject.crash_aware) controller.OnWorkerUp(w);
        break;
      case OpKind::kStep: {
        if (!ref.live[w]) break;
        if (!started[w]) {
          const IterationId t = ref.completed[w];
          const std::uint64_t bound = subject.bound(controller);
          const bool got = controller.MayStartAt(w, t, now);
          const bool want = ref.Admissible(w, t, bound);
          if (got != want) {
            mismatch(i, w, t, got, want, bound);
            return out;
          }
          if (got) {
            started[w] = 1;
            ++out.starts;
          } else {
            ++out.denials;
          }
        } else {
          const IterationId t = ref.completed[w];
          const auto touched = MaskToShards(op.shard_mask,
                                            schedule.num_shards);
          controller.OnPushAt(w, t, now, touched);
          ref.OnPush(w, op.shard_mask);
          started[w] = 0;
        }
        break;
      }
    }
  }

  // Liveness drain: round-robin every live worker to `target_iterations`
  // (dense pushes). A full pass with no progress while work remains means
  // the gate wedged — with a correct controller the least-progressed live
  // worker is always admissible, so this must always complete.
  for (;;) {
    bool all_done = true;
    bool progressed = false;
    for (WorkerId w = 0; w < schedule.num_workers; ++w) {
      if (!ref.live[w]) continue;
      if (ref.completed[w] >= schedule.target_iterations && !started[w]) {
        continue;
      }
      all_done = false;
      const IterationId t = ref.completed[w];
      now = now + Duration::Milliseconds(1.0);
      if (!started[w]) {
        const std::uint64_t bound = subject.bound(controller);
        const bool got = controller.MayStartAt(w, t, now);
        const bool want = ref.Admissible(w, t, bound);
        if (got != want) {
          mismatch(schedule.ops.size(), w, t, got, want, bound);
          return out;
        }
        if (!got) continue;
        started[w] = 1;
      } else {
        controller.OnPushAt(w, t, now, {});
        ref.OnPush(w, 0);
        started[w] = 0;
      }
      progressed = true;
    }
    if (all_done) break;
    if (!progressed) {
      out.verdict = Verdict::kLiveness;
      out.detail = "drain wedged: no live worker admissible";
      return out;
    }
  }
  return out;
}

// --- shrinking ---------------------------------------------------------------

// Greedy ddmin: repeatedly delete the largest op chunk that preserves the
// failure, halving the chunk until single ops survive. The result is
// 1-minimal: removing any single remaining op loses the failure.
Schedule Shrink(Schedule schedule, const SubjectFactory& make,
                Verdict failure) {
  const auto still_fails = [&](const Schedule& candidate) {
    return RunSchedule(candidate, make).verdict == failure;
  };
  std::size_t chunk = std::max<std::size_t>(1, schedule.ops.size() / 2);
  for (;;) {
    bool removed_any = false;
    std::size_t offset = 0;
    while (offset < schedule.ops.size()) {
      Schedule candidate = schedule;
      const std::size_t end =
          std::min(offset + chunk, candidate.ops.size());
      candidate.ops.erase(candidate.ops.begin() + offset,
                          candidate.ops.begin() + end);
      if (still_fails(candidate)) {
        schedule = std::move(candidate);
        removed_any = true;
        // Re-test the same offset: the next chunk slid into place.
      } else {
        offset += chunk;
      }
    }
    if (chunk == 1) {
      if (!removed_any) break;  // 1-minimal: no single op is removable
    } else {
      chunk /= 2;
    }
  }
  return schedule;
}

// --- subjects ----------------------------------------------------------------

Subject AspSubject(const Schedule& s) {
  return {MakeAsp(s.num_workers), RefModel::Kind::kAsp, false,
          [](const ConsistencyController&) { return std::uint64_t{0}; }};
}

Subject BspSubject(const Schedule& s) {
  return {MakeBsp(s.num_workers), RefModel::Kind::kScalar, false,
          [](const ConsistencyController&) { return std::uint64_t{0}; }};
}

Subject SspSubject(const Schedule& s) {
  return {MakeSsp(s.num_workers, s.staleness), RefModel::Kind::kScalar, false,
          [bound = s.staleness](const ConsistencyController&) {
            return bound;
          }};
}

Subject PerShardSubject(const Schedule& s) {
  return {MakePerShardSsp(s.num_workers, s.num_shards, s.staleness),
          RefModel::Kind::kPerShard, true,
          [](const ConsistencyController& c) {
            return static_cast<const PerShardSspController&>(c).staleness();
          }};
}

Subject DynamicSubject(const Schedule& s) {
  DynamicSspConfig config;
  config.initial_staleness = s.staleness;
  return {MakeDynamicSsp(s.num_workers, s.num_shards, config),
          RefModel::Kind::kPerShard, true,
          [](const ConsistencyController& c) {
            return static_cast<const DynamicSspController&>(c).staleness();
          }};
}

// The planted bug: admits one iteration past the bound (t <= min + s + 1).
// The harness must catch it and shrink the witness to a few ops.
class OffByOneSspController final : public ConsistencyController {
 public:
  OffByOneSspController(std::size_t num_workers, std::uint64_t staleness)
      : ConsistencyController(num_workers),
        staleness_(staleness),
        completed_(num_workers, 0) {}
  std::string name() const override { return "BrokenSSP"; }
  bool MayStart(WorkerId, IterationId next_iteration) const override {
    std::uint64_t min = completed_[0];
    for (std::uint64_t c : completed_) min = std::min(min, c);
    return next_iteration <= min + staleness_ + 1;  // the bug
  }
  void OnPush(WorkerId worker, IterationId iteration) override {
    completed_[worker] = iteration + 1;
  }

 private:
  std::uint64_t staleness_;
  std::vector<std::uint64_t> completed_;
};

Subject BrokenSubject(const Schedule& s) {
  return {std::make_unique<OffByOneSspController>(s.num_workers, s.staleness),
          RefModel::Kind::kScalar, false,
          [bound = s.staleness](const ConsistencyController&) {
            return bound;
          }};
}

// --- the property ------------------------------------------------------------

constexpr std::size_t kTrials = 1000;

void CheckController(const SubjectFactory& make, bool with_crashes,
                     const char* label) {
  const std::uint64_t base = BaseSeed();
  std::uint64_t total_starts = 0;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t seed = base + trial;
    const Schedule schedule = GenerateSchedule(seed, with_crashes);
    const RunOutcome outcome = RunSchedule(schedule, make);
    total_starts += outcome.starts;
    if (outcome.verdict == Verdict::kOk) continue;
    const Schedule minimal = Shrink(schedule, make, outcome.verdict);
    const RunOutcome shrunk = RunSchedule(minimal, make);
    FAIL() << label << " seed " << seed << ": " << outcome.detail
           << "\nminimal counterexample (" << minimal.ops.size()
           << " ops): " << FormatOps(minimal) << "\nshrunk failure: "
           << shrunk.detail;
  }
  // A harness that never denies anything is not exercising the bound.
  // (ASP legitimately never blocks; everything else must, across 1000
  // random schedules.)
  SCOPED_TRACE(label);
  EXPECT_GT(total_starts, 0u);
}

TEST(ConsistencyPropertyTest, AspMatchesReferenceOnRandomSchedules) {
  CheckController(AspSubject, false, "ASP");
}

TEST(ConsistencyPropertyTest, BspMatchesReferenceOnRandomSchedules) {
  CheckController(BspSubject, false, "BSP");
}

TEST(ConsistencyPropertyTest, SspMatchesReferenceOnRandomSchedules) {
  CheckController(SspSubject, false, "SSP");
}

TEST(ConsistencyPropertyTest, PerShardSspMatchesReferenceUnderChurn) {
  CheckController(PerShardSubject, true, "PSSP");
}

TEST(ConsistencyPropertyTest, DynamicSspMatchesReferenceUnderChurn) {
  CheckController(DynamicSubject, true, "DSSP");
}

TEST(ConsistencyPropertyTest, StaticControllersDoBlock) {
  // Sanity on harness teeth: across the trial corpus, SSP-family schedules
  // must include genuine denials (otherwise every safety check is vacuous).
  const std::uint64_t base = BaseSeed();
  std::uint64_t denials = 0;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    const Schedule schedule = GenerateSchedule(base + trial, false);
    denials += RunSchedule(schedule, BspSubject).denials;
  }
  EXPECT_GT(denials, 0u);
}

TEST(ConsistencyPropertyTest, PlantedOffByOneIsCaughtAndShrunk) {
  const std::uint64_t base = BaseSeed();
  bool caught = false;
  for (std::size_t trial = 0; trial < kTrials && !caught; ++trial) {
    const std::uint64_t seed = base + trial;
    const Schedule schedule = GenerateSchedule(seed, false);
    const RunOutcome outcome = RunSchedule(schedule, BrokenSubject);
    if (outcome.verdict != Verdict::kDecisionMismatch) continue;
    caught = true;
    const Schedule minimal = Shrink(schedule, BrokenSubject, outcome.verdict);
    // The smallest witness of "admits min + s + 1": one worker runs s + 1
    // iterations ahead (2 ops each: start + push), then one more start
    // attempt exposes the over-admission. ddmin must land on it (or an
    // equally small equivalent); anything bigger means shrinking regressed.
    EXPECT_LE(minimal.ops.size(), 2 * (minimal.staleness + 1) + 1)
        << FormatOps(minimal);
    EXPECT_EQ(RunSchedule(minimal, BrokenSubject).verdict,
              Verdict::kDecisionMismatch);
    // 1-minimality: every single remaining op is load-bearing.
    for (std::size_t i = 0; i < minimal.ops.size(); ++i) {
      Schedule pruned = minimal;
      pruned.ops.erase(pruned.ops.begin() + i);
      EXPECT_NE(RunSchedule(pruned, BrokenSubject).verdict,
                Verdict::kDecisionMismatch)
          << "op " << i << " of the minimal counterexample is removable";
    }
  }
  EXPECT_TRUE(caught)
      << "1000 random schedules never exposed the planted off-by-one";
}

// The runtime wraps controllers in a ConsistencyGate; driven from one
// thread, its decisions (and DSSP's retune count) must be bit-identical to
// the bare controller the sim calls. This pins the sim-vs-runtime decision
// layer without threads in the loop (the threaded path is hammered in
// consistency_hammer_test).
TEST(ConsistencyPropertyTest, GateDecisionsMatchBareController) {
  const std::uint64_t base = BaseSeed() ^ 0x9A7Eu;
  for (std::size_t trial = 0; trial < 200; ++trial) {
    const Schedule schedule = GenerateSchedule(base + trial, true);
    DynamicSspConfig config;
    config.initial_staleness = schedule.staleness;
    auto bare = std::make_unique<DynamicSspController>(
        schedule.num_workers, schedule.num_shards, config);
    DynamicSspController* bare_view = bare.get();
    auto gated = std::make_unique<DynamicSspController>(
        schedule.num_workers, schedule.num_shards, config);
    DynamicSspController* gated_view = gated.get();
    ConsistencyGate gate(std::move(gated));

    std::vector<std::uint64_t> completed(schedule.num_workers, 0);
    std::vector<char> started(schedule.num_workers, 0);
    std::vector<char> live(schedule.num_workers, 1);
    SimTime now = SimTime::Zero();
    for (const Op& op : schedule.ops) {
      now = now + Duration::Milliseconds(op.delta_ms);
      const WorkerId w = op.worker;
      switch (op.kind) {
        case OpKind::kCrash:
          if (!live[w]) break;
          live[w] = 0;
          started[w] = 0;
          bare_view->OnWorkerDown(w);
          gate.OnWorkerDown(w);
          break;
        case OpKind::kRejoin:
          if (live[w]) break;
          live[w] = 1;
          bare_view->OnWorkerUp(w);
          gate.OnWorkerUp(w);
          break;
        case OpKind::kStep: {
          if (!live[w]) break;
          if (!started[w]) {
            const bool bare_may =
                bare_view->MayStartAt(w, completed[w], now);
            // Probe the gate's controller directly (WaitToStart would
            // block on a denial); both wrap the same type, so equal state
            // must mean equal decisions.
            const bool gate_may =
                gate.controller().MayStartAt(w, completed[w], now);
            ASSERT_EQ(bare_may, gate_may)
                << "trial " << trial << " worker " << w << " iteration "
                << completed[w];
            if (bare_may) {
              ASSERT_TRUE(gate.WaitToStart(w, completed[w]));
              started[w] = 1;
            }
          } else {
            const auto touched =
                MaskToShards(op.shard_mask, schedule.num_shards);
            bare_view->OnPushAt(w, completed[w], now, touched);
            gate.OnPush(w, completed[w], now, touched);
            ++completed[w];
            started[w] = 0;
          }
          break;
        }
      }
      ASSERT_EQ(bare_view->staleness(), gated_view->staleness());
      ASSERT_EQ(bare_view->retunes(), gated_view->retunes());
    }
    EXPECT_EQ(gate.blocks(), 0u);  // only admitted starts reached the gate
  }
}

}  // namespace
}  // namespace specsync
