// Property-based encode/decode harness for the gradient codecs.
//
// Each trial generates a random push sequence (dense and sparse gradients
// over a random shard split, values drawn from a pool heavy in the floating
// point edge cases: zeros, negative zero, double denormals, half-overflow
// magnitudes) and checks the invariants ps/compression.h documents:
//
//  * top-k + error feedback — the codec's output and residual match an
//    independently written reference model exactly, and every push conserves
//    mass per coordinate: residual_after + sent == residual_before + input
//    in exact double arithmetic (values are moved, never recomputed);
//  * int8 / fp16 — Transform() is idempotent: transforming an already
//    transformed gradient reproduces the same bits, the property that makes
//    the in-process and TCP transports deliver identical parameter streams;
//  * none / delta — Transform() is the identity, bit for bit.
//
// On failure the harness shrinks the push list to a minimal counterexample
// (greedy ddmin, the consistency_property_test recipe) and prints it. Two
// deliberately planted bugs — a top-k that breaks ties toward the larger
// index and one that leaks a residual slot without sending it — must be
// caught and shrunk, so the harness proves its own teeth.
//
// Trials are seeded; set SPECSYNC_PROPERTY_SEED to reproduce or explore.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ps/compression.h"
#include "ps/param_store.h"

namespace specsync {
namespace {

std::uint64_t BaseSeed() {
  if (const char* env = std::getenv("SPECSYNC_PROPERTY_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260808;
}

// Values that historically break quantizers: signed zeros, double denormals
// (below half's and float's ranges), the half-precision overflow boundary,
// and magnitudes spanning ~40 orders.
constexpr double kSpecialValues[] = {
    0.0,     -0.0,     5e-324,  -5e-324, 1e-310,  -1e-310, 2.2250738585072014e-308,
    6.1e-5,  -6.1e-5,  6.0e-8,  -6.0e-8, 65504.0, -65504.0, 65520.0,
    1e20,    -1e20,    1.0,     -1.0,    127.0,   -128.0,  0.333333333333333};

double RandomValue(Rng& rng) {
  const std::size_t roll = rng.Index(4);
  if (roll == 0) {
    return kSpecialValues[rng.Index(std::size(kSpecialValues))];
  }
  if (roll == 1) return rng.Uniform(-1e-6, 1e-6);
  return rng.Uniform(-10.0, 10.0);
}

// One push: dense carries `dim` values; sparse carries distinct sorted-free
// indices (no duplicates, so the reference model and SparseUpdate::Coalesce
// cannot disagree on duplicate-summation order).
struct Push {
  bool sparse = false;
  std::vector<std::uint64_t> indices;
  std::vector<double> values;
};

struct Trial {
  std::size_t dim = 8;
  std::size_t num_shards = 1;
  double fraction = 0.01;
  std::vector<Push> pushes;
};

Trial GenerateTrial(std::uint64_t seed) {
  Rng rng(seed);
  Trial t;
  t.dim = 4 + rng.Index(61);        // 4..64
  t.num_shards = 1 + rng.Index(4);  // 1..4
  const double fractions[] = {0.01, 0.05, 0.25, 1.0};
  t.fraction = fractions[rng.Index(std::size(fractions))];
  const std::size_t num_pushes = 1 + rng.Index(8);
  for (std::size_t p = 0; p < num_pushes; ++p) {
    Push push;
    push.sparse = rng.Index(2) == 1;
    if (push.sparse) {
      std::vector<std::uint64_t> pool(t.dim);
      for (std::size_t i = 0; i < t.dim; ++i) pool[i] = i;
      for (std::size_t i = pool.size(); i > 1; --i) {
        std::swap(pool[i - 1], pool[rng.Index(i)]);
      }
      const std::size_t nnz = 1 + rng.Index(t.dim);
      push.indices.assign(pool.begin(),
                          pool.begin() + static_cast<std::ptrdiff_t>(nnz));
      for (std::size_t i = 0; i < nnz; ++i) {
        push.values.push_back(RandomValue(rng));
      }
    } else {
      for (std::size_t i = 0; i < t.dim; ++i) {
        push.values.push_back(RandomValue(rng));
      }
    }
    t.pushes.push_back(std::move(push));
  }
  return t;
}

Gradient MakeGradient(const Push& push, std::size_t dim) {
  if (!push.sparse) {
    Gradient g = Gradient::Dense(dim);
    std::copy(push.values.begin(), push.values.end(), g.dense().begin());
    return g;
  }
  Gradient g = Gradient::Sparse();
  g.sparse().Reserve(push.indices.size());
  for (std::size_t i = 0; i < push.indices.size(); ++i) {
    g.sparse().Add(push.indices[i], push.values[i]);
  }
  return g;
}

std::string FormatTrial(const Trial& t) {
  std::ostringstream out;
  out << "dim=" << t.dim << " shards=" << t.num_shards
      << " fraction=" << t.fraction << " pushes:";
  for (const Push& push : t.pushes) {
    out << (push.sparse ? " S{" : " D{");
    for (std::size_t i = 0; i < push.values.size(); ++i) {
      if (i > 0) out << ',';
      if (push.sparse) out << push.indices[i] << ':';
      out << push.values[i];
    }
    out << '}';
  }
  return out.str();
}

// --- reference top-k + error feedback ---------------------------------------
//
// Transparent O(dim log dim) reimplementation of the documented semantics;
// shares no code with GradientCodec.
struct RefTopK {
  std::size_t dim;
  double fraction;
  std::vector<double> residual;

  RefTopK(std::size_t dim_in, double fraction_in)
      : dim(dim_in), fraction(fraction_in), residual(dim_in, 0.0) {}

  // Returns the (index-sorted) selected coordinates.
  std::vector<std::pair<std::uint64_t, double>> Apply(const Push& push) {
    std::size_t input_support = dim;
    if (push.sparse) {
      input_support = push.indices.size();
      for (std::size_t i = 0; i < push.indices.size(); ++i) {
        residual[push.indices[i]] += push.values[i];
      }
    } else {
      for (std::size_t i = 0; i < dim; ++i) residual[i] += push.values[i];
    }
    std::vector<std::uint64_t> candidates;
    for (std::size_t i = 0; i < dim; ++i) {
      if (residual[i] != 0.0) candidates.push_back(i);
    }
    const auto k = static_cast<std::size_t>(std::max<long long>(
        1,
        std::llround(fraction * static_cast<double>(input_support))));
    std::sort(candidates.begin(), candidates.end(),
              [&](std::uint64_t a, std::uint64_t b) {
                const double ma = std::fabs(residual[a]);
                const double mb = std::fabs(residual[b]);
                if (ma != mb) return ma > mb;
                return a < b;
              });
    const std::size_t selected = std::min(k, candidates.size());
    std::vector<std::uint64_t> winners(
        candidates.begin(),
        candidates.begin() + static_cast<std::ptrdiff_t>(selected));
    std::sort(winners.begin(), winners.end());
    std::vector<std::pair<std::uint64_t, double>> out;
    for (const std::uint64_t idx : winners) {
      out.emplace_back(idx, residual[idx]);
      residual[idx] = 0.0;
    }
    return out;
  }
};

// --- subjects ---------------------------------------------------------------

enum class SubjectKind {
  kCodec,        // the real GradientCodec
  kTieBreakBug,  // planted: magnitude ties go to the *larger* index
  kLeakyBug,     // planted: zeroes one losing residual slot without sending
};

// Runs one push through the subject; returns (sent pairs, residual view).
class Subject {
 public:
  Subject(SubjectKind kind, const Trial& trial)
      : kind_(kind), trial_(trial), ref_(trial.dim, trial.fraction) {
    if (kind_ == SubjectKind::kCodec) {
      CompressionSpec spec;
      spec.kind = CodecKind::kTopK;
      spec.topk_fraction = trial.fraction;
      codec_ = std::make_unique<GradientCodec>(
          spec, /*num_workers=*/1,
          ParameterServer::ShardSplit(trial.dim, trial.num_shards));
    }
  }

  std::vector<std::pair<std::uint64_t, double>> Apply(const Push& push) {
    if (kind_ == SubjectKind::kCodec) {
      Gradient grad = MakeGradient(push, trial_.dim);
      codec_->Transform(0, grad);
      std::vector<std::pair<std::uint64_t, double>> out;
      for (std::size_t i = 0; i < grad.sparse().nnz(); ++i) {
        out.emplace_back(grad.sparse().indices()[i],
                         grad.sparse().values()[i]);
      }
      return out;
    }
    // The planted bugs piggyback on the reference with a twist.
    if (kind_ == SubjectKind::kTieBreakBug) {
      // Re-run selection with the broken comparator.
      std::size_t input_support =
          push.sparse ? push.indices.size() : trial_.dim;
      if (push.sparse) {
        for (std::size_t i = 0; i < push.indices.size(); ++i) {
          ref_.residual[push.indices[i]] += push.values[i];
        }
      } else {
        for (std::size_t i = 0; i < trial_.dim; ++i) {
          ref_.residual[i] += push.values[i];
        }
      }
      std::vector<std::uint64_t> candidates;
      for (std::size_t i = 0; i < trial_.dim; ++i) {
        if (ref_.residual[i] != 0.0) candidates.push_back(i);
      }
      const auto k = static_cast<std::size_t>(std::max<long long>(
          1, std::llround(trial_.fraction *
                          static_cast<double>(input_support))));
      std::sort(candidates.begin(), candidates.end(),
                [&](std::uint64_t a, std::uint64_t b) {
                  const double ma = std::fabs(ref_.residual[a]);
                  const double mb = std::fabs(ref_.residual[b]);
                  if (ma != mb) return ma > mb;
                  return a > b;  // the bug
                });
      const std::size_t selected = std::min(k, candidates.size());
      std::vector<std::uint64_t> winners(
          candidates.begin(),
          candidates.begin() + static_cast<std::ptrdiff_t>(selected));
      std::sort(winners.begin(), winners.end());
      std::vector<std::pair<std::uint64_t, double>> out;
      for (const std::uint64_t idx : winners) {
        out.emplace_back(idx, ref_.residual[idx]);
        ref_.residual[idx] = 0.0;
      }
      return out;
    }
    // kLeakyBug: correct selection, then silently zero the largest losing
    // residual slot (error feedback forgets it — conservation breaks).
    auto out = ref_.Apply(push);
    for (std::size_t i = 0; i < trial_.dim; ++i) {
      if (ref_.residual[i] != 0.0) {
        ref_.residual[i] = 0.0;
        break;
      }
    }
    return out;
  }

  std::span<const double> residual() const {
    if (kind_ == SubjectKind::kCodec) return codec_->residual(0);
    return ref_.residual;
  }

 private:
  SubjectKind kind_;
  const Trial& trial_;
  RefTopK ref_;  // planted bugs mutate this state directly
  std::unique_ptr<GradientCodec> codec_;
};

// --- the top-k property ------------------------------------------------------

std::optional<std::string> RunTopKTrial(const Trial& trial,
                                        SubjectKind kind) {
  Subject subject(kind, trial);
  RefTopK ref(trial.dim, trial.fraction);
  for (std::size_t p = 0; p < trial.pushes.size(); ++p) {
    const Push& push = trial.pushes[p];
    // Conservation bookkeeping: residual_before + input, per coordinate.
    std::vector<double> expected(trial.dim, 0.0);
    {
      const auto residual = subject.residual();
      for (std::size_t i = 0; i < residual.size(); ++i) {
        expected[i] = residual[i];
      }
      if (push.sparse) {
        for (std::size_t i = 0; i < push.indices.size(); ++i) {
          expected[push.indices[i]] += push.values[i];
        }
      } else {
        for (std::size_t i = 0; i < trial.dim; ++i) {
          expected[i] += push.values[i];
        }
      }
    }

    const auto got = subject.Apply(push);
    const auto want = ref.Apply(push);

    const auto fail = [&](const std::string& what) {
      std::ostringstream msg;
      msg << "push " << p << ": " << what;
      return msg.str();
    };

    // residual_after + sent == residual_before + input, exactly.
    std::vector<double> actual(trial.dim, 0.0);
    {
      const auto residual = subject.residual();
      for (std::size_t i = 0; i < residual.size(); ++i) {
        actual[i] = residual[i];
      }
      for (const auto& [idx, value] : got) actual[idx] += value;
    }
    for (std::size_t i = 0; i < trial.dim; ++i) {
      if (actual[i] != expected[i]) {
        return fail("conservation broken at coord " + std::to_string(i));
      }
    }

    // Output canonical form: strictly ascending indices, no zero values.
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (i > 0 && got[i].first <= got[i - 1].first) {
        return fail("output indices not strictly ascending");
      }
      if (got[i].second == 0.0) return fail("zero value selected");
    }

    // Exact agreement with the reference model (selection + values +
    // residual state).
    if (got.size() != want.size()) {
      return fail("selected " + std::to_string(got.size()) + " coords, want " +
                  std::to_string(want.size()));
    }
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i].first != want[i].first || got[i].second != want[i].second) {
        return fail("selection differs from reference at slot " +
                    std::to_string(i));
      }
    }
    const auto residual = subject.residual();
    for (std::size_t i = 0; i < residual.size(); ++i) {
      if (residual[i] != ref.residual[i]) {
        return fail("residual differs from reference at coord " +
                    std::to_string(i));
      }
    }
  }
  return std::nullopt;
}

// Greedy ddmin over the push list: repeatedly delete the largest chunk that
// preserves the failure, halving the chunk until single pushes survive.
Trial ShrinkTrial(Trial trial, SubjectKind kind) {
  const auto still_fails = [&](const Trial& candidate) {
    return RunTopKTrial(candidate, kind).has_value();
  };
  std::size_t chunk = std::max<std::size_t>(1, trial.pushes.size() / 2);
  for (;;) {
    bool removed_any = false;
    std::size_t offset = 0;
    while (offset < trial.pushes.size()) {
      Trial candidate = trial;
      const std::size_t end =
          std::min(offset + chunk, candidate.pushes.size());
      candidate.pushes.erase(
          candidate.pushes.begin() + static_cast<std::ptrdiff_t>(offset),
          candidate.pushes.begin() + static_cast<std::ptrdiff_t>(end));
      if (still_fails(candidate)) {
        trial = std::move(candidate);
        removed_any = true;
      } else {
        offset += chunk;
      }
    }
    if (chunk == 1) {
      if (!removed_any) break;
    } else {
      chunk /= 2;
    }
  }
  return trial;
}

TEST(CompressionPropertyTest, TopKMatchesReferenceAndConserves) {
  const std::uint64_t base = BaseSeed();
  for (std::uint64_t trial_idx = 0; trial_idx < 300; ++trial_idx) {
    const Trial trial = GenerateTrial(base + trial_idx);
    const auto failure = RunTopKTrial(trial, SubjectKind::kCodec);
    if (failure.has_value()) {
      const Trial minimal = ShrinkTrial(trial, SubjectKind::kCodec);
      FAIL() << *failure << "\nseed " << base + trial_idx
             << "\nminimal counterexample: " << FormatTrial(minimal);
    }
  }
}

// The harness has teeth: each planted bug is caught within a few trials and
// shrinks to a minimal witness.
TEST(CompressionPropertyTest, PlantedBugsAreCaughtAndShrunk) {
  const std::uint64_t base = BaseSeed();
  for (const SubjectKind kind :
       {SubjectKind::kTieBreakBug, SubjectKind::kLeakyBug}) {
    bool caught = false;
    for (std::uint64_t trial_idx = 0; trial_idx < 200 && !caught;
         ++trial_idx) {
      const Trial trial = GenerateTrial(base + trial_idx);
      if (RunTopKTrial(trial, kind).has_value()) {
        caught = true;
        const Trial minimal = ShrinkTrial(trial, kind);
        // A 1-minimal witness for either bug needs very few pushes.
        EXPECT_LE(minimal.pushes.size(), 3u)
            << "shrink left a large witness: " << FormatTrial(minimal);
        EXPECT_TRUE(RunTopKTrial(minimal, kind).has_value());
      }
    }
    EXPECT_TRUE(caught) << "planted bug survived 200 trials";
  }
}

// --- quantization properties -------------------------------------------------

void ExpectBitIdentical(const Gradient& a, const Gradient& b) {
  ASSERT_EQ(a.is_sparse(), b.is_sparse());
  if (a.is_sparse()) {
    ASSERT_EQ(a.sparse().nnz(), b.sparse().nnz());
    for (std::size_t i = 0; i < a.sparse().nnz(); ++i) {
      EXPECT_EQ(a.sparse().indices()[i], b.sparse().indices()[i]);
      std::uint64_t bits_a = 0;
      std::uint64_t bits_b = 0;
      std::memcpy(&bits_a, &a.sparse().values()[i], sizeof(bits_a));
      std::memcpy(&bits_b, &b.sparse().values()[i], sizeof(bits_b));
      EXPECT_EQ(bits_a, bits_b) << "value bits differ at entry " << i;
    }
    return;
  }
  ASSERT_EQ(a.dense().size(), b.dense().size());
  for (std::size_t i = 0; i < a.dense().size(); ++i) {
    std::uint64_t bits_a = 0;
    std::uint64_t bits_b = 0;
    std::memcpy(&bits_a, &a.dense()[i], sizeof(bits_a));
    std::memcpy(&bits_b, &b.dense()[i], sizeof(bits_b));
    EXPECT_EQ(bits_a, bits_b) << "value bits differ at coord " << i;
  }
}

// Transform is idempotent for the quantizers and the identity for none /
// delta — the bit-identity contract between the two transports.
TEST(CompressionPropertyTest, QuantizersIdempotentIdentityCodecsExact) {
  const std::uint64_t base = BaseSeed();
  for (std::uint64_t trial_idx = 0; trial_idx < 200; ++trial_idx) {
    const Trial trial = GenerateTrial(base ^ (0xABCD0000 + trial_idx));
    for (const CodecKind kind : {CodecKind::kInt8, CodecKind::kFp16,
                                 CodecKind::kNone, CodecKind::kDelta}) {
      CompressionSpec spec;
      spec.kind = kind;
      GradientCodec codec(spec, 1,
                          ParameterServer::ShardSplit(trial.dim,
                                                      trial.num_shards));
      for (const Push& push : trial.pushes) {
        Gradient original = MakeGradient(push, trial.dim);
        Gradient once = MakeGradient(push, trial.dim);
        codec.Transform(0, once);
        if (kind == CodecKind::kNone || kind == CodecKind::kDelta) {
          ExpectBitIdentical(once, original);
          continue;
        }
        Gradient twice = once;
        codec.Transform(0, twice);
        ExpectBitIdentical(twice, once);
      }
    }
  }
}

// Every non-NaN half value is a fixed point of Decode -> Encode (exhaustive:
// 65536 cases), so fp16 re-encoding on the wire is lossless.
TEST(CompressionPropertyTest, Fp16DecodeEncodeExhaustive) {
  for (std::uint32_t h = 0; h <= 0xffffu; ++h) {
    const auto half = static_cast<std::uint16_t>(h);
    const bool is_nan = (half & 0x7c00u) == 0x7c00u && (half & 0x3ffu) != 0;
    if (is_nan) continue;  // NaN payloads canonicalize; skip
    EXPECT_EQ(EncodeFp16(DecodeFp16(half)), half)
        << "half 0x" << std::hex << h;
  }
}

// The wire encoder recomputes the int8 scale from the already-quantized
// slice it ships; whatever scale it lands on, requantizing must reproduce
// the slice bit-for-bit (the scale itself may legitimately differ in one
// corner: a slice whose max underflows max/127 to zero quantizes entirely
// to zeros, and the zeros slice reports scale 0).
TEST(CompressionPropertyTest, Int8RequantizationReproducesQuantizedSlice) {
  const std::uint64_t base = BaseSeed();
  for (std::uint64_t trial_idx = 0; trial_idx < 300; ++trial_idx) {
    Rng rng(base ^ (0x5CA1E000 + trial_idx));
    std::vector<double> slice(1 + rng.Index(32));
    for (double& v : slice) v = RandomValue(rng);
    const double scale = Int8ScaleFor(slice);
    for (double& v : slice) {
      v = DequantizeInt8(QuantizeInt8(v, scale), scale);
    }
    const double rescale = Int8ScaleFor(slice);
    for (const double v : slice) {
      EXPECT_EQ(DequantizeInt8(QuantizeInt8(v, rescale), rescale), v);
    }
  }
}

}  // namespace
}  // namespace specsync
