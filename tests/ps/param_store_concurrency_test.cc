// Concurrency test: the ParameterServer is shared by all runtime nodes, so
// hammer it from many threads and check the version/accounting invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "optim/lr_schedule.h"
#include "ps/param_store.h"
#include "tensor/vector.h"

namespace specsync {
namespace {

TEST(ParamStoreConcurrencyTest, PushesFromManyThreadsAllApply) {
  constexpr std::size_t kDim = 256;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPushesPerThread = 200;
  auto applier =
      std::make_shared<SgdApplier>(std::make_shared<ConstantSchedule>(1.0));
  ParameterServer server(kDim, 4, applier);
  server.SetParams(DenseVector(kDim, 0.0));

  {
    std::vector<std::jthread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&server] {
        Gradient grad = Gradient::Dense(kDim);
        for (double& v : grad.dense()) v = -1.0;  // each push adds +1
        for (std::size_t i = 0; i < kPushesPerThread; ++i) {
          server.Push(grad, 0);
        }
      });
    }
  }
  EXPECT_EQ(server.version(), kThreads * kPushesPerThread);
  const DenseVector params = server.Snapshot();
  for (double v : params) {
    EXPECT_DOUBLE_EQ(v, static_cast<double>(kThreads * kPushesPerThread));
  }
}

TEST(ParamStoreConcurrencyTest, ConcurrentPullsSeeConsistentSnapshots) {
  // Writers add +1 to every coordinate per push; readers must never observe
  // a torn vector (all coordinates of a snapshot must be equal).
  constexpr std::size_t kDim = 512;
  auto applier =
      std::make_shared<SgdApplier>(std::make_shared<ConstantSchedule>(1.0));
  ParameterServer server(kDim, 8, applier);
  server.SetParams(DenseVector(kDim, 0.0));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  {
    std::vector<std::jthread> readers;
    for (int r = 0; r < 3; ++r) {
      readers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          const PullResult pulled = server.Pull();
          const double first = pulled.params.front();
          for (double v : pulled.params) {
            if (v != first) {
              torn.fetch_add(1, std::memory_order_relaxed);
              break;
            }
          }
        }
      });
    }
    {
      std::vector<std::jthread> writers;
      for (int w = 0; w < 3; ++w) {
        writers.emplace_back([&server] {
          Gradient grad = Gradient::Dense(kDim);
          for (double& v : grad.dense()) v = -1.0;
          for (int i = 0; i < 300; ++i) server.Push(grad, 0);
        });
      }
    }  // join writers
    stop.store(true, std::memory_order_relaxed);
  }  // join readers
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(server.version(), 900u);
}

}  // namespace
}  // namespace specsync
