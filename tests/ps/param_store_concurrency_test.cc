// Concurrency tests: the ParameterServer is shared by all runtime nodes, so
// hammer it from many threads and check the consistency contract the header
// documents — each shard is internally consistent (slice + shard version move
// together under the shard mutex), while a composed Pull() may be torn
// *across* shards. Run under TSan via scripts/sanitize.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/thread_pool.h"
#include "optim/lr_schedule.h"
#include "ps/param_store.h"
#include "tensor/vector.h"

namespace specsync {
namespace {

std::shared_ptr<const SgdApplier> UnitApplier() {
  return std::make_shared<SgdApplier>(std::make_shared<ConstantSchedule>(1.0));
}

TEST(ParamStoreConcurrencyTest, PushesFromManyThreadsAllApply) {
  constexpr std::size_t kDim = 256;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPushesPerThread = 200;
  ParameterServer server(kDim, 4, UnitApplier());
  server.SetParams(DenseVector(kDim, 0.0));

  {
    std::vector<std::jthread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&server] {
        Gradient grad = Gradient::Dense(kDim);
        for (double& v : grad.dense()) v = -1.0;  // each push adds +1
        for (std::size_t i = 0; i < kPushesPerThread; ++i) {
          server.Push(grad, 0);
        }
      });
    }
  }
  EXPECT_EQ(server.version(), kThreads * kPushesPerThread);
  const DenseVector params = server.Snapshot();
  for (double v : params) {
    EXPECT_DOUBLE_EQ(v, static_cast<double>(kThreads * kPushesPerThread));
  }
}

// Writers add +1 to every coordinate per push. A composed Pull() may be torn
// across shards (by design), but within any one shard the slice must be
// uniform: the shard mutex covers the whole per-shard apply.
TEST(ParamStoreConcurrencyTest, PulledShardsAreInternallyConsistent) {
  constexpr std::size_t kDim = 512;
  constexpr std::size_t kShards = 8;
  ParameterServer server(kDim, kShards, UnitApplier());
  server.SetParams(DenseVector(kDim, 0.0));

  std::vector<ShardInfo> layout;
  for (std::size_t s = 0; s < kShards; ++s) layout.push_back(server.shard(s));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn_within_shard{0};
  {
    std::vector<std::jthread> readers;
    for (int r = 0; r < 3; ++r) {
      readers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          const PullResult pulled = server.Pull();
          for (const ShardInfo& shard : layout) {
            const double first = pulled.params[shard.offset];
            for (std::size_t i = 1; i < shard.length; ++i) {
              if (pulled.params[shard.offset + i] != first) {
                torn_within_shard.fetch_add(1, std::memory_order_relaxed);
                break;
              }
            }
          }
        }
      });
    }
    {
      std::vector<std::jthread> writers;
      for (int w = 0; w < 3; ++w) {
        writers.emplace_back([&server] {
          Gradient grad = Gradient::Dense(kDim);
          for (double& v : grad.dense()) v = -1.0;
          for (int i = 0; i < 300; ++i) server.Push(grad, 0);
        });
      }
    }  // join writers
    stop.store(true, std::memory_order_relaxed);
  }  // join readers
  EXPECT_EQ(torn_within_shard.load(), 0u);
  EXPECT_EQ(server.version(), 900u);
}

// PullShard's slice and shard version are read under one lock, so with +1
// dense pushes the slice value must equal the shard's push count exactly.
TEST(ParamStoreConcurrencyTest, PullShardSliceMatchesItsShardVersion) {
  constexpr std::size_t kDim = 96;
  constexpr std::size_t kShards = 4;
  ParameterServer server(kDim, kShards, UnitApplier());
  server.SetParams(DenseVector(kDim, 0.0));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> mismatches{0};
  {
    std::vector<std::jthread> readers;
    for (int r = 0; r < 2; ++r) {
      readers.emplace_back([&] {
        std::size_t s = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const ShardPullResult pulled = server.PullShard(s % kShards);
          for (double v : pulled.params) {
            if (v != static_cast<double>(pulled.shard_version)) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
              break;
            }
          }
          ++s;
        }
      });
    }
    {
      std::vector<std::jthread> writers;
      for (int w = 0; w < 3; ++w) {
        writers.emplace_back([&server] {
          Gradient grad = Gradient::Dense(kDim);
          for (double& v : grad.dense()) v = -1.0;
          for (int i = 0; i < 200; ++i) server.Push(grad, 0);
        });
      }
    }  // join writers
    stop.store(true, std::memory_order_relaxed);
  }  // join readers
  EXPECT_EQ(mismatches.load(), 0u);
}

// Sparse pushes from threads owning disjoint index bands: per-shard routing
// must apply every entry exactly once with no cross-thread interference.
TEST(ParamStoreConcurrencyTest, DisjointSparsePushesAllLand) {
  constexpr std::size_t kDim = 64;
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kThreads = 4;  // one per shard band
  constexpr std::size_t kPushesPerThread = 500;
  ParameterServer server(kDim, kShards, UnitApplier());
  server.SetParams(DenseVector(kDim, 0.0));

  {
    std::vector<std::jthread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&server, t] {
        const ShardInfo shard = server.shard(t);
        Gradient grad = Gradient::Sparse();
        grad.sparse().Add(shard.offset, -1.0);  // adds +1 to one coordinate
        for (std::size_t i = 0; i < kPushesPerThread; ++i) {
          server.Push(grad, 0);
        }
      });
    }
  }
  EXPECT_EQ(server.version(), kThreads * kPushesPerThread);
  for (std::size_t s = 0; s < kShards; ++s) {
    const ShardPullResult pulled = server.PullShard(s);
    EXPECT_DOUBLE_EQ(pulled.params.front(),
                     static_cast<double>(kPushesPerThread));
    EXPECT_EQ(pulled.shard_version, kPushesPerThread);
  }
}

// Pool-fanned pulls (the runtime's concurrent pull path) share one pool from
// several reader threads; the latch-scoped wait must keep them independent.
TEST(ParamStoreConcurrencyTest, PoolFannedPullsShareOnePool) {
  constexpr std::size_t kDim = 512;
  constexpr std::size_t kShards = 8;
  ParameterServer server(kDim, kShards, UnitApplier());
  server.SetParams(DenseVector(kDim, 0.0));
  ThreadPool pool(4);

  std::vector<ShardInfo> layout;
  for (std::size_t s = 0; s < kShards; ++s) layout.push_back(server.shard(s));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn_within_shard{0};
  {
    std::vector<std::jthread> readers;
    for (int r = 0; r < 3; ++r) {
      readers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          const PullResult pulled = server.Pull(&pool);
          for (const ShardInfo& shard : layout) {
            const double first = pulled.params[shard.offset];
            for (std::size_t i = 1; i < shard.length; ++i) {
              if (pulled.params[shard.offset + i] != first) {
                torn_within_shard.fetch_add(1, std::memory_order_relaxed);
                break;
              }
            }
          }
        }
      });
    }
    {
      std::vector<std::jthread> writers;
      for (int w = 0; w < 2; ++w) {
        writers.emplace_back([&server] {
          Gradient grad = Gradient::Dense(kDim);
          for (double& v : grad.dense()) v = -1.0;
          for (int i = 0; i < 200; ++i) server.Push(grad, 0);
        });
      }
    }  // join writers
    stop.store(true, std::memory_order_relaxed);
  }  // join readers
  EXPECT_EQ(torn_within_shard.load(), 0u);
  EXPECT_EQ(server.version(), 400u);
  const DenseVector params = server.Snapshot();
  for (double v : params) EXPECT_DOUBLE_EQ(v, 400.0);
}

}  // namespace
}  // namespace specsync
