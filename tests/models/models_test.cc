// Model tests: numerical gradient checks (the key property test for every
// model), loss semantics, and trainability.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "common/rng.h"
#include "data/synthetic.h"
#include "models/linear_regression.h"
#include "models/matrix_factorization.h"
#include "models/mlp.h"
#include "models/softmax_regression.h"

namespace specsync {
namespace {

std::shared_ptr<const ClassificationDataset> SmallClassData(
    std::uint64_t seed, std::size_t n = 60, std::size_t d = 6,
    std::size_t c = 3) {
  Rng rng(seed);
  ClassificationSpec spec;
  spec.num_examples = n;
  spec.feature_dim = d;
  spec.num_classes = c;
  return std::make_shared<ClassificationDataset>(
      GenerateClassification(spec, rng));
}

std::shared_ptr<const RatingsDataset> SmallRatings(std::uint64_t seed) {
  Rng rng(seed);
  RatingsSpec spec;
  spec.num_users = 12;
  spec.num_items = 9;
  spec.num_ratings = 80;
  spec.true_rank = 3;
  return std::make_shared<RatingsDataset>(GenerateRatings(spec, rng));
}

// Central-difference gradient check on a batch. Sparse gradients are
// densified. Checks a strided subset of coordinates for speed.
void CheckGradient(const Model& model, std::uint64_t seed,
                   double tolerance = 1e-5) {
  Rng rng(seed);
  std::vector<double> params(model.param_dim());
  model.InitParams(params, rng);

  std::vector<std::size_t> batch(std::min<std::size_t>(7, model.dataset_size()));
  std::iota(batch.begin(), batch.end(), 0u);

  Gradient grad;
  model.LossAndGradient(params, batch, grad);
  const std::vector<double> dense =
      grad.is_sparse() ? ToDense(grad.sparse(), params.size()) : grad.dense();

  const double eps = 1e-6;
  const std::size_t stride = std::max<std::size_t>(1, params.size() / 40);
  for (std::size_t i = 0; i < params.size(); i += stride) {
    const double saved = params[i];
    params[i] = saved + eps;
    const double up = model.Loss(params, batch);
    params[i] = saved - eps;
    const double down = model.Loss(params, batch);
    params[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(dense[i], numeric, tolerance)
        << model.name() << " param " << i;
  }
}

TEST(GradientCheckTest, SoftmaxRegression) {
  SoftmaxRegressionModel model(SmallClassData(1), {});
  CheckGradient(model, 11);
}

TEST(GradientCheckTest, SoftmaxRegressionNoReg) {
  SoftmaxRegressionModel model(SmallClassData(2), {.regularization = 0.0});
  CheckGradient(model, 12);
}

TEST(GradientCheckTest, MlpOneHidden) {
  MlpClassifierModel model(SmallClassData(3), {.hidden = {5}});
  CheckGradient(model, 13, 1e-4);
}

TEST(GradientCheckTest, MlpTwoHidden) {
  MlpClassifierModel model(SmallClassData(4),
                           {.hidden = {6, 4}, .regularization = 1e-3});
  CheckGradient(model, 14, 1e-4);
}

TEST(GradientCheckTest, MlpNoHiddenIsSoftmaxTopology) {
  MlpClassifierModel model(SmallClassData(5), {.hidden = {}});
  CheckGradient(model, 15);
}

TEST(GradientCheckTest, MatrixFactorization) {
  MatrixFactorizationConfig config;
  config.rank = 3;
  config.regularization = 0.05;
  config.sum_gradient = false;  // gradient of the reported mean loss
  MatrixFactorizationModel model(SmallRatings(6), config);
  CheckGradient(model, 16);
}

TEST(GradientCheckTest, LinearRegression) {
  auto data = SmallClassData(7);
  std::vector<double> targets(data->size());
  Rng rng(8);
  for (double& t : targets) t = rng.Normal(0.0, 1.0);
  LinearRegressionModel model(data, std::move(targets), 0.01);
  CheckGradient(model, 17);
}

TEST(MfModelTest, SumGradientIsBatchTimesMean) {
  MatrixFactorizationConfig mean_config;
  mean_config.rank = 3;
  mean_config.sum_gradient = false;
  MatrixFactorizationConfig sum_config = mean_config;
  sum_config.sum_gradient = true;
  auto data = SmallRatings(9);
  MatrixFactorizationModel mean_model(data, mean_config);
  MatrixFactorizationModel sum_model(data, sum_config);

  Rng rng(10);
  std::vector<double> params(mean_model.param_dim());
  mean_model.InitParams(params, rng);
  std::vector<std::size_t> batch{0, 1, 2, 3};
  Gradient gm, gs;
  mean_model.LossAndGradient(params, batch, gm);
  sum_model.LossAndGradient(params, batch, gs);
  const auto dm = ToDense(gm.sparse(), params.size());
  const auto ds = ToDense(gs.sparse(), params.size());
  for (std::size_t i = 0; i < dm.size(); ++i) {
    EXPECT_NEAR(ds[i], dm[i] * 4.0, 1e-12);
  }
}

TEST(MfModelTest, ParamLayoutOffsets) {
  MatrixFactorizationConfig config;
  config.rank = 4;
  MatrixFactorizationModel model(SmallRatings(11), config);
  EXPECT_EQ(model.param_dim(), (12 + 9) * 4u);
  EXPECT_EQ(model.user_offset(2), 8u);
  EXPECT_EQ(model.item_offset(0), 48u);
  EXPECT_THROW(model.user_offset(12), CheckError);
  EXPECT_THROW(model.item_offset(9), CheckError);
}

TEST(MfModelTest, GradientIsSparseAndTouchesOnlyBatchRows) {
  MatrixFactorizationConfig config;
  config.rank = 2;
  auto data = SmallRatings(12);
  MatrixFactorizationModel model(data, config);
  EXPECT_TRUE(model.prefers_sparse_gradients());
  Rng rng(13);
  std::vector<double> params(model.param_dim());
  model.InitParams(params, rng);
  std::vector<std::size_t> batch{0};
  Gradient grad;
  model.LossAndGradient(params, batch, grad);
  ASSERT_TRUE(grad.is_sparse());
  // One rating touches exactly 2*rank coordinates.
  EXPECT_EQ(grad.sparse().nnz(), 4u);
}

TEST(SoftmaxModelTest, UniformInitGivesLogCLoss) {
  auto data = SmallClassData(14, 90, 6, 3);
  SoftmaxRegressionModel model(data, {.regularization = 0.0});
  std::vector<double> params(model.param_dim(), 0.0);
  std::vector<std::size_t> batch(30);
  std::iota(batch.begin(), batch.end(), 0u);
  EXPECT_NEAR(model.Loss(params, batch), std::log(3.0), 1e-9);
}

TEST(SoftmaxModelTest, TrainingImprovesAccuracy) {
  auto data = SmallClassData(15, 300, 8, 3);
  SoftmaxRegressionModel model(data, {});
  Rng rng(16);
  std::vector<double> params(model.param_dim());
  model.InitParams(params, rng);
  const double acc_before = model.Accuracy(params);

  std::vector<std::size_t> all(data->size());
  std::iota(all.begin(), all.end(), 0u);
  Gradient grad;
  for (int step = 0; step < 200; ++step) {
    model.LossAndGradient(params, all, grad);
    Axpy(-0.5, grad.dense(), params);
  }
  EXPECT_GT(model.Accuracy(params), acc_before);
  EXPECT_GT(model.Accuracy(params), 0.5);
}

TEST(MlpModelTest, ParamDimMatchesTopology) {
  auto data = SmallClassData(17, 30, 6, 3);
  MlpClassifierModel model(data, {.hidden = {5, 4}});
  // (6*5+5) + (5*4+4) + (4*3+3) = 35 + 24 + 15.
  EXPECT_EQ(model.param_dim(), 74u);
  EXPECT_EQ(model.num_layers(), 3u);
}

TEST(MlpModelTest, FullBatchTrainingReducesLoss) {
  auto data = SmallClassData(18, 200, 8, 4);
  MlpClassifierModel model(data, {.hidden = {16}});
  Rng rng(19);
  std::vector<double> params(model.param_dim());
  model.InitParams(params, rng);
  std::vector<std::size_t> all(data->size());
  std::iota(all.begin(), all.end(), 0u);
  const double loss_before = model.Loss(params, all);
  Gradient grad;
  for (int step = 0; step < 150; ++step) {
    model.LossAndGradient(params, all, grad);
    Axpy(-0.5, grad.dense(), params);
  }
  EXPECT_LT(model.Loss(params, all), loss_before * 0.8);
}

TEST(ModelTest, FullLossSubsampleApproximatesFull) {
  auto data = SmallClassData(20, 500, 8, 4);
  SoftmaxRegressionModel model(data, {});
  Rng rng(21);
  std::vector<double> params(model.param_dim());
  model.InitParams(params, rng);
  const double full = model.FullLoss(params);
  const double sub = model.FullLoss(params, 250);
  EXPECT_NEAR(sub, full, 0.1 * std::abs(full) + 0.05);
}

TEST(GradientTest, DenseAddToAndClear) {
  Gradient g = Gradient::Dense(3);
  g.dense()[0] = 1.0;
  g.dense()[2] = -2.0;
  std::vector<double> dest(3, 10.0);
  g.AddTo(2.0, dest);
  EXPECT_EQ(dest, (std::vector<double>{12.0, 10.0, 6.0}));
  EXPECT_EQ(g.wire_bytes(), 24u);
  g.Clear();
  EXPECT_EQ(g.dense(), (std::vector<double>{0.0, 0.0, 0.0}));
}

TEST(GradientTest, SparseAddTo) {
  Gradient g = Gradient::Sparse();
  g.sparse().Add(1, 3.0);
  std::vector<double> dest(3, 0.0);
  g.AddTo(-1.0, dest);
  EXPECT_EQ(dest, (std::vector<double>{0.0, -3.0, 0.0}));
}

TEST(LinearRegressionTest, TargetSizeMismatchThrows) {
  auto data = SmallClassData(22, 10, 4, 2);
  EXPECT_THROW(LinearRegressionModel(data, std::vector<double>(5)), CheckError);
}

TEST(LinearRegressionTest, RecoversPlantedWeights) {
  // Plant y = w.x + b exactly; full-batch GD must drive loss to ~0.
  auto raw = SmallClassData(23, 300, 6, 2);
  std::vector<double> w_true{1.0, -2.0, 0.5, 0.0, 3.0, -1.0};
  std::vector<double> targets(raw->size());
  for (std::size_t i = 0; i < raw->size(); ++i) {
    targets[i] = Dot(raw->example(i).features, w_true) + 0.7;
  }
  LinearRegressionModel model(raw, std::move(targets), 0.0);
  Rng rng(24);
  std::vector<double> params(model.param_dim());
  model.InitParams(params, rng);
  std::vector<std::size_t> all(raw->size());
  std::iota(all.begin(), all.end(), 0u);
  Gradient grad;
  for (int step = 0; step < 2000; ++step) {
    model.LossAndGradient(params, all, grad);
    Axpy(-0.5, grad.dense(), params);
  }
  EXPECT_LT(model.Loss(params, all), 1e-3);
}

}  // namespace
}  // namespace specsync
