// Tests for learning-rate schedules and the SGD applier.
#include <gtest/gtest.h>

#include "common/check.h"
#include "optim/lr_schedule.h"
#include "optim/sgd.h"

namespace specsync {
namespace {

TEST(LrScheduleTest, Constant) {
  ConstantSchedule schedule(0.1);
  EXPECT_DOUBLE_EQ(schedule.Rate(0), 0.1);
  EXPECT_DOUBLE_EQ(schedule.Rate(1000), 0.1);
  EXPECT_THROW(ConstantSchedule(0.0), CheckError);
}

TEST(LrScheduleTest, StepDecayMatchesPaperShape) {
  // Paper Sec. VI-A: 0.05 decayed at epochs 200 and 250.
  StepDecaySchedule schedule(0.05, {200, 250}, 0.1);
  EXPECT_DOUBLE_EQ(schedule.Rate(0), 0.05);
  EXPECT_DOUBLE_EQ(schedule.Rate(199), 0.05);
  EXPECT_DOUBLE_EQ(schedule.Rate(200), 0.005);
  EXPECT_DOUBLE_EQ(schedule.Rate(249), 0.005);
  EXPECT_NEAR(schedule.Rate(250), 0.0005, 1e-12);
}

TEST(LrScheduleTest, StepDecayRequiresSortedBoundaries) {
  EXPECT_THROW(StepDecaySchedule(0.1, {250, 200}, 0.1), CheckError);
}

TEST(LrScheduleTest, InverseSqrt) {
  InverseSqrtSchedule schedule(1.0);
  EXPECT_DOUBLE_EQ(schedule.Rate(0), 1.0);
  EXPECT_DOUBLE_EQ(schedule.Rate(3), 0.5);
}

TEST(SgdApplierTest, BasicStep) {
  auto schedule = std::make_shared<ConstantSchedule>(0.5);
  SgdApplier applier(schedule);
  Gradient g = Gradient::Dense(2);
  g.dense()[0] = 1.0;
  g.dense()[1] = -2.0;
  std::vector<double> params{10.0, 10.0};
  applier.Apply(g, 0, params);
  EXPECT_DOUBLE_EQ(params[0], 9.5);
  EXPECT_DOUBLE_EQ(params[1], 11.0);
}

TEST(SgdApplierTest, UsesEpochRate) {
  auto schedule = std::make_shared<StepDecaySchedule>(
      1.0, std::vector<EpochId>{10}, 0.1);
  SgdApplier applier(schedule);
  Gradient g = Gradient::Dense(1);
  g.dense()[0] = 1.0;
  std::vector<double> params{0.0};
  applier.Apply(g, 0, params);
  EXPECT_DOUBLE_EQ(params[0], -1.0);
  applier.Apply(g, 10, params);
  EXPECT_DOUBLE_EQ(params[0], -1.1);
  EXPECT_DOUBLE_EQ(applier.Rate(10), 0.1);
}

TEST(SgdApplierTest, DenseClipping) {
  auto schedule = std::make_shared<ConstantSchedule>(1.0);
  SgdApplier applier(schedule, SgdConfig{.clip = 0.5});
  Gradient g = Gradient::Dense(2);
  g.dense()[0] = 10.0;
  g.dense()[1] = -0.25;
  std::vector<double> params{0.0, 0.0};
  applier.Apply(g, 0, params);
  EXPECT_DOUBLE_EQ(params[0], -0.5);   // clipped
  EXPECT_DOUBLE_EQ(params[1], 0.25);   // untouched
}

TEST(SgdApplierTest, SparseClipping) {
  auto schedule = std::make_shared<ConstantSchedule>(1.0);
  SgdApplier applier(schedule, SgdConfig{.clip = 1.0});
  Gradient g = Gradient::Sparse();
  g.sparse().Add(0, 5.0);
  g.sparse().Add(2, 0.5);
  std::vector<double> params{0.0, 0.0, 0.0};
  applier.Apply(g, 0, params);
  EXPECT_DOUBLE_EQ(params[0], -1.0);
  EXPECT_DOUBLE_EQ(params[1], 0.0);
  EXPECT_DOUBLE_EQ(params[2], -0.5);
}

TEST(SgdApplierTest, ClippingDoesNotMutateGradient) {
  auto schedule = std::make_shared<ConstantSchedule>(1.0);
  SgdApplier applier(schedule, SgdConfig{.clip = 0.1});
  Gradient g = Gradient::Dense(1);
  g.dense()[0] = 5.0;
  std::vector<double> params{0.0};
  applier.Apply(g, 0, params);
  EXPECT_DOUBLE_EQ(g.dense()[0], 5.0);
}

TEST(SgdApplierTest, SparseOutOfRangeThrows) {
  auto schedule = std::make_shared<ConstantSchedule>(1.0);
  SgdApplier applier(schedule, SgdConfig{.clip = 1.0});
  Gradient g = Gradient::Sparse();
  g.sparse().Add(9, 1.0);
  std::vector<double> params{0.0};
  EXPECT_THROW(applier.Apply(g, 0, params), CheckError);
}

TEST(SgdApplierTest, NullScheduleThrows) {
  EXPECT_THROW(SgdApplier(nullptr), CheckError);
}

}  // namespace
}  // namespace specsync
