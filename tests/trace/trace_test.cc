// Tests for traces, PAP analysis (Fig. 3), and transfer accounting (Figs 12-13).
#include <gtest/gtest.h>

#include "common/check.h"
#include "trace/pap_analysis.h"
#include "trace/trace.h"
#include "trace/transfer.h"

namespace specsync {
namespace {

SimTime T(double s) { return SimTime::FromSeconds(s); }
Duration D(double s) { return Duration::Seconds(s); }

TEST(TrainingTraceTest, RecordsAndQueries) {
  TrainingTrace trace(2);
  trace.RecordPull(0, T(1.0), 0);
  trace.RecordPush(0, T(2.0), 0, 1, 0);
  trace.RecordPull(1, T(2.5), 1);
  trace.RecordPush(1, T(3.5), 0, 2, 1);
  trace.RecordAbort(0, T(3.0), D(0.5));
  trace.RecordLoss(T(4.0), 1.5, 2, 0);

  EXPECT_EQ(trace.total_pushes(), 2u);
  EXPECT_EQ(trace.total_aborts(), 1u);
  EXPECT_EQ(trace.PullTimes(0), (std::vector<SimTime>{T(1.0)}));
  EXPECT_EQ(trace.PushTimes(1), (std::vector<SimTime>{T(3.5)}));
  EXPECT_DOUBLE_EQ(trace.total_wasted_compute().seconds(), 0.5);
  EXPECT_EQ(trace.end_time(), T(4.0));
  ASSERT_EQ(trace.losses().size(), 1u);
  EXPECT_DOUBLE_EQ(trace.losses()[0].loss, 1.5);
}

TEST(TrainingTraceTest, InvalidWorkerThrows) {
  TrainingTrace trace(1);
  EXPECT_THROW(trace.RecordPull(1, T(0.0), 0), CheckError);
  EXPECT_THROW(trace.PushTimes(2), CheckError);
}

// PAP: pulls at t=0 (worker 0); other workers push at 0.5, 1.5, 1.6.
TEST(PapAnalysisTest, CountsPushesPerInterval) {
  TrainingTrace trace(2);
  trace.RecordPull(0, T(0.0), 0);
  trace.RecordPush(1, T(0.5), 0, 1, 0);
  trace.RecordPush(1, T(1.5), 1, 2, 0);
  trace.RecordPush(1, T(1.6), 2, 3, 0);
  trace.RecordLoss(T(10.0), 0.0, 3, 0);  // extends end_time so horizon fits

  PapConfig config;
  config.interval = D(1.0);
  config.num_intervals = 3;
  const PapResult result = AnalyzePap(trace, config);
  ASSERT_EQ(result.per_interval.size(), 3u);
  EXPECT_DOUBLE_EQ(result.mean_per_interval[0], 1.0);
  EXPECT_DOUBLE_EQ(result.mean_per_interval[1], 2.0);
  EXPECT_DOUBLE_EQ(result.mean_per_interval[2], 0.0);
  EXPECT_DOUBLE_EQ(result.median_first_two, 3.0);
}

TEST(PapAnalysisTest, OwnPushesExcluded) {
  TrainingTrace trace(2);
  trace.RecordPull(0, T(0.0), 0);
  trace.RecordPush(0, T(0.5), 0, 1, 0);  // own push: not a missed update
  trace.RecordPush(1, T(0.7), 0, 2, 0);
  trace.RecordLoss(T(5.0), 0.0, 2, 0);
  PapConfig config;
  config.interval = D(1.0);
  config.num_intervals = 2;
  const PapResult result = AnalyzePap(trace, config);
  EXPECT_DOUBLE_EQ(result.mean_per_interval[0], 1.0);
}

TEST(PapAnalysisTest, PullsWithoutFullHorizonSkipped) {
  TrainingTrace trace(2);
  trace.RecordPull(0, T(0.0), 0);
  trace.RecordPush(1, T(0.5), 0, 1, 0);  // end_time = 0.5 < horizon
  PapConfig config;
  config.interval = D(1.0);
  config.num_intervals = 3;
  const PapResult result = AnalyzePap(trace, config);
  EXPECT_EQ(result.per_interval[0].count, 0u);
}

TEST(PapAnalysisTest, UniformArrivalsGiveFlatProfile) {
  // 10 workers pushing round-robin every 0.1s: each 1s interval after any
  // pull contains ~9 other-worker pushes.
  TrainingTrace trace(10);
  for (WorkerId w = 0; w < 10; ++w) trace.RecordPull(w, T(0.05), 0);
  std::uint64_t version = 0;
  for (int i = 0; i < 400; ++i) {
    trace.RecordPush(static_cast<WorkerId>(i % 10), T(0.1 * i), i / 10,
                     ++version, 0);
  }
  PapConfig config;
  config.interval = D(1.0);
  config.num_intervals = 10;
  const PapResult result = AnalyzePap(trace, config);
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(result.mean_per_interval[k], 9.0, 1.1) << "interval " << k;
  }
}

TEST(TransferTest, ChargesByCategory) {
  TransferAccountant transfers;
  transfers.Charge(TransferCategory::kPullParams, 1000, T(1.0));
  transfers.Charge(TransferCategory::kPushGrads, 500, T(2.0));
  transfers.Charge(TransferCategory::kNotify, 64, T(3.0));
  EXPECT_EQ(transfers.total_bytes(), 1564u);
  EXPECT_EQ(transfers.bytes(TransferCategory::kPullParams), 1000u);
  EXPECT_NEAR(transfers.fraction(TransferCategory::kPushGrads), 500.0 / 1564.0,
              1e-12);
  EXPECT_EQ(transfers.bytes(TransferCategory::kReSync), 0u);
}

TEST(TransferTest, OutOfOrderChargeThrows) {
  TransferAccountant transfers;
  transfers.Charge(TransferCategory::kNotify, 1, T(5.0));
  EXPECT_THROW(transfers.Charge(TransferCategory::kNotify, 1, T(4.0)),
               CheckError);
}

TEST(TransferTest, TimelineIsCumulativeAndMonotone) {
  TransferAccountant transfers;
  transfers.Charge(TransferCategory::kPullParams, 100, T(1.0));
  transfers.Charge(TransferCategory::kPushGrads, 200, T(5.0));
  transfers.Charge(TransferCategory::kPullParams, 300, T(9.0));
  const auto timeline = transfers.Timeline(T(10.0), 11);
  ASSERT_EQ(timeline.size(), 11u);
  EXPECT_EQ(timeline[0].cumulative_bytes, 0u);
  EXPECT_EQ(timeline[1].cumulative_bytes, 100u);  // t=1
  EXPECT_EQ(timeline[5].cumulative_bytes, 300u);  // t=5
  EXPECT_EQ(timeline[10].cumulative_bytes, 600u);
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_GE(timeline[i].cumulative_bytes, timeline[i - 1].cumulative_bytes);
  }
}

TEST(TransferTest, EmptyFractionIsZero) {
  TransferAccountant transfers;
  EXPECT_EQ(transfers.fraction(TransferCategory::kNotify), 0.0);
}

TEST(TransferTest, CategoryNames) {
  EXPECT_STREQ(TransferCategoryName(TransferCategory::kPullParams),
               "pull_params");
  EXPECT_STREQ(TransferCategoryName(TransferCategory::kReSync), "resync");
}

}  // namespace
}  // namespace specsync
