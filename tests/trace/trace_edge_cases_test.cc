// Edge-case coverage for the trace analyses: empty traces, a single worker
// (PAP counts only *other* workers' pushes), and a run where every iteration
// aborts. The exporters and AnalyzePap must degrade gracefully — headers and
// zeros, not crashes — because short or pathological sims produce exactly
// these shapes.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "trace/pap_analysis.h"
#include "trace/trace.h"
#include "trace/trace_export.h"

namespace specsync {
namespace {

std::size_t CountLines(const std::string& s) {
  std::size_t lines = 0;
  for (char c : s) {
    if (c == '\n') ++lines;
  }
  return lines;
}

TEST(TraceEdgeCasesTest, EmptyTraceAnalyzesToZeros) {
  const TrainingTrace trace(4);  // four workers, no events recorded
  const PapResult pap = AnalyzePap(trace, PapConfig{});
  ASSERT_EQ(pap.per_interval.size(), PapConfig{}.num_intervals);
  ASSERT_EQ(pap.mean_per_interval.size(), PapConfig{}.num_intervals);
  for (std::size_t k = 0; k < pap.per_interval.size(); ++k) {
    EXPECT_EQ(pap.per_interval[k].p50, 0.0) << "interval " << k;
    EXPECT_EQ(pap.mean_per_interval[k], 0.0) << "interval " << k;
  }
  EXPECT_EQ(pap.median_first_two, 0.0);
  EXPECT_EQ(trace.total_pushes(), 0u);
  EXPECT_EQ(trace.total_aborts(), 0u);
  EXPECT_EQ(trace.total_wasted_compute().seconds(), 0.0);
}

TEST(TraceEdgeCasesTest, EmptyTraceExportsHeadersOnly) {
  const TrainingTrace trace(4);
  std::ostringstream loss_csv;
  ExportLossCurve(trace, loss_csv);
  EXPECT_EQ(CountLines(loss_csv.str()), 1u) << loss_csv.str();

  std::ostringstream events_csv;
  ExportEvents(trace, events_csv);
  EXPECT_EQ(CountLines(events_csv.str()), 1u) << events_csv.str();
}

TEST(TraceEdgeCasesTest, EmptyTracesDigestEqualOnlyWithSameShape) {
  EXPECT_EQ(TraceDigest(TrainingTrace(4)), TraceDigest(TrainingTrace(4)));
  // Worker count is part of the recorded history.
  EXPECT_NE(TraceDigest(TrainingTrace(4)), TraceDigest(TrainingTrace(5)));
}

TEST(TraceEdgeCasesTest, SingleWorkerHasNoPushesAfterPull) {
  // One worker pulling and pushing on a steady cadence: PAP counts pushes
  // from *other* workers after each pull, so every interval must stay zero.
  TrainingTrace trace(1);
  for (int i = 0; i < 10; ++i) {
    const double t = static_cast<double>(i);
    trace.RecordPull(0, SimTime::FromSeconds(t), /*version=*/i);
    trace.RecordPush(0, SimTime::FromSeconds(t + 0.5), /*iteration=*/i,
                     /*version=*/i + 1, /*missed_updates=*/0);
  }
  const PapResult pap = AnalyzePap(trace, PapConfig{});
  for (std::size_t k = 0; k < pap.per_interval.size(); ++k) {
    EXPECT_EQ(pap.mean_per_interval[k], 0.0) << "interval " << k;
    EXPECT_EQ(pap.per_interval[k].p50, 0.0) << "interval " << k;
  }
  EXPECT_EQ(pap.median_first_two, 0.0);
}

TEST(TraceEdgeCasesTest, AllAbortsTraceExportsAndAccountsWaste) {
  // Pathological run: every speculation window fires, no push ever lands.
  TrainingTrace trace(3);
  double total_waste = 0.0;
  for (int i = 0; i < 6; ++i) {
    const WorkerId w = static_cast<WorkerId>(i % 3);
    const double t = 0.7 * static_cast<double>(i + 1);
    trace.RecordPull(w, SimTime::FromSeconds(t), /*version=*/0);
    const double waste = 0.25 + 0.05 * static_cast<double>(i);
    trace.RecordAbort(w, SimTime::FromSeconds(t + 0.4),
                      Duration::Seconds(waste));
    total_waste += waste;
  }
  EXPECT_EQ(trace.total_pushes(), 0u);
  EXPECT_EQ(trace.total_aborts(), 6u);
  EXPECT_DOUBLE_EQ(trace.total_wasted_compute().seconds(), total_waste);

  // PAP sees pulls but zero pushes: defined, all-zero result.
  const PapResult pap = AnalyzePap(trace, PapConfig{});
  EXPECT_EQ(pap.median_first_two, 0.0);

  // ExportEvents must carry one row per pull and per abort; no push rows.
  std::ostringstream events_csv;
  ExportEvents(trace, events_csv);
  const std::string csv = events_csv.str();
  EXPECT_EQ(CountLines(csv), 1u + 6u + 6u) << csv;
  EXPECT_NE(csv.find("abort"), std::string::npos);
  EXPECT_EQ(csv.find("push,"), std::string::npos);

  // The loss curve is empty (no evals ran) but still well-formed.
  std::ostringstream loss_csv;
  ExportLossCurve(trace, loss_csv);
  EXPECT_EQ(CountLines(loss_csv.str()), 1u);
}

}  // namespace
}  // namespace specsync
