#include "trace/trace_export.h"

#include <gtest/gtest.h>

#include <sstream>

namespace specsync {
namespace {

SimTime T(double s) { return SimTime::FromSeconds(s); }

TEST(TraceExportTest, LossCurveCsv) {
  TrainingTrace trace(1);
  trace.RecordLoss(T(1.0), 2.5, 10, 0);
  trace.RecordLoss(T(2.0), 1.25, 20, 1);
  std::ostringstream os;
  ExportLossCurve(trace, os);
  EXPECT_EQ(os.str(),
            "time_s,loss,total_iterations,epoch\n"
            "1,2.5,10,0\n"
            "2,1.25,20,1\n");
}

TEST(TraceExportTest, EventsSortedWithKinds) {
  TrainingTrace trace(2);
  trace.RecordPull(0, T(1.0), 0);
  trace.RecordPush(0, T(2.0), 0, 1, 0);
  trace.RecordAbort(1, T(1.5), Duration::Seconds(0.2));
  std::ostringstream os;
  ExportEvents(trace, os);
  const std::string out = os.str();
  const auto pull_pos = out.find("pull,1");
  const auto abort_pos = out.find("abort,1.5");
  const auto push_pos = out.find("push,2");
  ASSERT_NE(pull_pos, std::string::npos);
  ASSERT_NE(abort_pos, std::string::npos);
  ASSERT_NE(push_pos, std::string::npos);
  EXPECT_LT(pull_pos, abort_pos);
  EXPECT_LT(abort_pos, push_pos);
}

TEST(TraceExportTest, EmptyTraceExportsHeadersOnly) {
  TrainingTrace trace(2);
  std::ostringstream events;
  ExportEvents(trace, events);
  EXPECT_EQ(events.str(), "kind,time_s,worker,iteration,version,missed_updates\n");
  std::ostringstream loss;
  ExportLossCurve(trace, loss);
  EXPECT_EQ(loss.str(), "time_s,loss,total_iterations,epoch\n");
}

TEST(TraceExportTest, AbortsOnlyTraceGoldenCsv) {
  // A trace holding nothing but aborts (a pathological all-stale run): rows
  // keep the abort schema — iteration/version/missed are not applicable and
  // export as empty fields — and stay time-sorted across workers.
  TrainingTrace trace(3);
  trace.RecordAbort(2, T(0.5), Duration::Seconds(0.25));
  trace.RecordAbort(0, T(1.0), Duration::Seconds(0.125));
  trace.RecordAbort(1, T(2.25), Duration::Seconds(1.0));
  std::ostringstream os;
  ExportEvents(trace, os);
  EXPECT_EQ(os.str(),
            "kind,time_s,worker,iteration,version,missed_updates\n"
            "abort,0.5,2,,,\n"
            "abort,1,0,,,\n"
            "abort,2.25,1,,,\n");
  std::ostringstream loss;
  ExportLossCurve(trace, loss);
  EXPECT_EQ(loss.str(), "time_s,loss,total_iterations,epoch\n");
}

TEST(TraceExportTest, TransferTimelineAndBreakdown) {
  TransferAccountant transfers;
  transfers.Charge(TransferCategory::kPullParams, 100, T(1.0));
  transfers.Charge(TransferCategory::kNotify, 50, T(2.0));
  std::ostringstream timeline;
  ExportTransferTimeline(transfers, T(2.0), timeline, 3);
  EXPECT_EQ(timeline.str(),
            "time_s,cumulative_bytes\n"
            "0,0\n"
            "1,100\n"
            "2,150\n");
  std::ostringstream breakdown;
  ExportTransferBreakdown(transfers, breakdown);
  const std::string out = breakdown.str();
  EXPECT_NE(out.find("pull_params,100,"), std::string::npos);
  EXPECT_NE(out.find("notify,50,"), std::string::npos);
  EXPECT_NE(out.find("resync,0,0"), std::string::npos);
}

}  // namespace
}  // namespace specsync
