// Schema validation for the Chrome trace stream: the export must be a
// syntactically valid JSON document whose every traceEvents entry carries the
// fields the Perfetto / chrome://tracing loaders require, with flow events
// obeying the "s"/"f" pairing rules the cross-process merge tool depends on.
//
// The repo's obs layer is write-only JSON, so the minimal recursive-descent
// parser lives here in the test: if it rejects the export, so would the
// trace viewers.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "obs/span_recorder.h"

namespace specsync::obs {
namespace {

// --- minimal JSON document model + parser -----------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, std::shared_ptr<JsonValue>>;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value;

  bool is_string() const { return std::holds_alternative<std::string>(value); }
  bool is_number() const { return std::holds_alternative<double>(value); }
  const std::string& str() const { return std::get<std::string>(value); }
  double num() const { return std::get<double>(value); }
  const JsonObject& obj() const { return std::get<JsonObject>(value); }
  const JsonArray& arr() const { return std::get<JsonArray>(value); }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  // Parses the full document; nullopt-style failure = nullptr.
  std::shared_ptr<JsonValue> Parse() {
    auto value = ParseValue();
    SkipWs();
    if (value == nullptr || pos_ != text_.size()) return nullptr;
    return value;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  std::shared_ptr<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return nullptr;
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  std::shared_ptr<JsonValue> ParseObject() {
    if (!Consume('{')) return nullptr;
    JsonObject obj;
    SkipWs();
    if (Consume('}')) {
      return std::make_shared<JsonValue>(JsonValue{std::move(obj)});
    }
    for (;;) {
      auto key = ParseString();
      if (key == nullptr || !Consume(':')) return nullptr;
      auto value = ParseValue();
      if (value == nullptr) return nullptr;
      obj.emplace(key->str(), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return nullptr;
    }
    return std::make_shared<JsonValue>(JsonValue{std::move(obj)});
  }

  std::shared_ptr<JsonValue> ParseArray() {
    if (!Consume('[')) return nullptr;
    JsonArray arr;
    SkipWs();
    if (Consume(']')) {
      return std::make_shared<JsonValue>(JsonValue{std::move(arr)});
    }
    for (;;) {
      auto value = ParseValue();
      if (value == nullptr) return nullptr;
      arr.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return nullptr;
    }
    return std::make_shared<JsonValue>(JsonValue{std::move(arr)});
  }

  std::shared_ptr<JsonValue> ParseString() {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') return nullptr;
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return nullptr;
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return nullptr;
            pos_ += 4;  // decoded fidelity is not under test
            c = '?';
            break;
          }
          default: return nullptr;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return nullptr;  // raw control character: invalid JSON
      }
      out += c;
    }
    if (pos_ >= text_.size()) return nullptr;
    ++pos_;  // closing quote
    return std::make_shared<JsonValue>(JsonValue{std::move(out)});
  }

  std::shared_ptr<JsonValue> ParseBool() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return std::make_shared<JsonValue>(JsonValue{true});
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return std::make_shared<JsonValue>(JsonValue{false});
    }
    return nullptr;
  }

  std::shared_ptr<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") != 0) return nullptr;
    pos_ += 4;
    return std::make_shared<JsonValue>(JsonValue{nullptr});
  }

  std::shared_ptr<JsonValue> ParseNumber() {
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == begin) return nullptr;
    try {
      return std::make_shared<JsonValue>(
          JsonValue{std::stod(text_.substr(begin, pos_ - begin))});
    } catch (...) {
      return nullptr;
    }
  }

  const std::string text_;
  std::size_t pos_ = 0;
};

// --- schema checks -----------------------------------------------------------

SimTime T(double s) { return SimTime::FromSeconds(s); }

std::shared_ptr<JsonValue> ExportAndParse(const SpanRecorder& spans) {
  std::ostringstream os;
  spans.ExportChromeTrace(os);
  JsonParser parser(os.str());
  auto doc = parser.Parse();
  EXPECT_NE(doc, nullptr) << "export is not valid JSON:\n" << os.str();
  return doc;
}

// Requires `field` to exist in `event` with the given JSON type.
void ExpectField(const JsonObject& event, const std::string& field,
                 bool expect_string) {
  const auto it = event.find(field);
  ASSERT_NE(it, event.end()) << "missing \"" << field << "\"";
  if (expect_string) {
    EXPECT_TRUE(it->second->is_string()) << field;
  } else {
    EXPECT_TRUE(it->second->is_number()) << field;
  }
}

TEST(TraceSchemaTest, ExportValidatesAgainstChromeTraceSchema) {
  SpanRecorder spans;
  spans.SetProcessInfo(7, "proc \"seven\"\n");  // exercises escaping
  spans.SetTrackName(0, "worker 0");
  spans.AddSpan("compute", "compute", 0, T(1.0), T(2.0),
                {{"iteration", "3"}, {"note", "a\"b\\c"}});
  spans.AddInstant("notify", "control", 0, T(2.0));
  spans.AddSpanWithFlow("pull.req", "net.client", 0, T(2.0), T(2.5),
                        /*flow_out=*/0x1234, /*flow_in=*/0);
  spans.AddSpanWithFlow("serve.pull", "net.server", 1, T(2.1), T(2.4),
                        /*flow_out=*/0, /*flow_in=*/0x1234);

  auto doc = ExportAndParse(spans);
  ASSERT_NE(doc, nullptr);
  const JsonObject& root = doc->obj();
  ASSERT_TRUE(root.count("traceEvents"));
  ASSERT_TRUE(root.count("clock_epoch_ns"));
  ASSERT_TRUE(root.count("displayTimeUnit"));

  const JsonArray& events = root.at("traceEvents")->arr();
  ASSERT_GE(events.size(), 6u);  // 4 events + flow pair + metadata
  std::size_t flow_begins = 0;
  std::size_t flow_ends = 0;
  for (const auto& entry : events) {
    const JsonObject& event = entry->obj();
    ExpectField(event, "name", /*expect_string=*/true);
    ExpectField(event, "ph", /*expect_string=*/true);
    ExpectField(event, "pid", /*expect_string=*/false);
    const std::string& ph = event.at("ph")->str();
    if (ph == "M") continue;  // metadata: no timing, tid optional
    ExpectField(event, "tid", /*expect_string=*/false);
    ExpectField(event, "ts", /*expect_string=*/false);
    ExpectField(event, "cat", /*expect_string=*/true);
    EXPECT_EQ(event.at("pid")->num(), 7.0);
    if (ph == "X") {
      ExpectField(event, "dur", /*expect_string=*/false);
      EXPECT_GE(event.at("dur")->num(), 0.0);
    } else if (ph == "s" || ph == "f") {
      // Flow ids must be strings (u64 exceeds JSON double precision).
      ExpectField(event, "id", /*expect_string=*/true);
      EXPECT_EQ(event.at("id")->str().substr(0, 2), "0x");
      if (ph == "s") ++flow_begins;
      if (ph == "f") {
        ++flow_ends;
        ASSERT_TRUE(event.count("bp"));
        EXPECT_EQ(event.at("bp")->str(), "e");
      }
    } else {
      EXPECT_EQ(ph, "i") << "unexpected phase " << ph;
    }
  }
  EXPECT_EQ(flow_begins, 1u);
  EXPECT_EQ(flow_ends, 1u);
}

TEST(TraceSchemaTest, EmptyRecorderStillExportsValidDocument) {
  SpanRecorder spans;
  auto doc = ExportAndParse(spans);
  ASSERT_NE(doc, nullptr);
  EXPECT_TRUE(doc->obj().count("traceEvents"));
}

TEST(TraceSchemaTest, HostileArgValuesStayValidJson) {
  SpanRecorder spans;
  spans.AddSpan("s", "c", 0, T(0.0), T(1.0),
                {{"quote", "\""}, {"backslash", "\\"}, {"newline", "\n"},
                 {"ctrl", std::string(1, '\x01')}, {"number", "42"},
                 {"looks_numeric", "1e999x"}});
  auto doc = ExportAndParse(spans);
  ASSERT_NE(doc, nullptr);
  // The span's args object must have survived with the values intact.
  const JsonArray& events = doc->obj().at("traceEvents")->arr();
  bool found = false;
  for (const auto& entry : events) {
    const JsonObject& event = entry->obj();
    const auto name = event.find("name");
    if (name == event.end() || name->second->str() != "s") continue;
    found = true;
    const JsonObject& args = event.at("args")->obj();
    EXPECT_EQ(args.at("quote")->str(), "\"");
    EXPECT_EQ(args.at("backslash")->str(), "\\");
    EXPECT_EQ(args.at("newline")->str(), "\n");
    EXPECT_EQ(args.at("number")->num(), 42.0);
    EXPECT_TRUE(args.at("looks_numeric")->is_string());
  }
  EXPECT_TRUE(found);
}

// Concurrent writers while an exporter runs: the recorder's mutex must keep
// the export a consistent snapshot (run under TSan via scripts/sanitize.sh).
TEST(TraceSchemaTest, ConcurrentWritersAndExportStayValid) {
  SpanRecorder spans;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        spans.AddSpanWithFlow("w", "net.client",
                              static_cast<std::uint32_t>(t),
                              T(i * 1e-3), T(i * 1e-3 + 5e-4),
                              /*flow_out=*/static_cast<std::uint64_t>(
                                  t * kPerThread + i + 1),
                              /*flow_in=*/0);
      }
    });
  }
  // Export concurrently with the writers; every intermediate snapshot must
  // already be valid JSON.
  for (int round = 0; round < 5; ++round) {
    auto doc = ExportAndParse(spans);
    ASSERT_NE(doc, nullptr);
  }
  for (auto& writer : writers) writer.join();
  auto doc = ExportAndParse(spans);
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(spans.event_count(),
            static_cast<std::size_t>(kThreads * kPerThread));
  // Final export: one flow-begin per span, all ids distinct and well formed.
  std::size_t flow_begins = 0;
  for (const auto& entry : doc->obj().at("traceEvents")->arr()) {
    const JsonObject& event = entry->obj();
    const auto ph = event.find("ph");
    if (ph != event.end() && ph->second->str() == "s") ++flow_begins;
  }
  EXPECT_EQ(flow_begins, static_cast<std::size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace specsync::obs
