// Flight recorder tests: bounded per-thread rings, overwrite semantics,
// JSON dump shape, and the disabled-by-default contract the deterministic
// engines rely on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"

namespace specsync::obs {
namespace {

TEST(FlightRecorderTest, DisabledRecorderRecordsNothing) {
  FlightRecorder recorder;
  recorder.Record(FlightKind::kInstant, "ignored", 1, 2);
  EXPECT_FALSE(recorder.enabled());
  EXPECT_EQ(recorder.total_recorded(), 0u);
}

TEST(FlightRecorderTest, RecordsEventsWithPayloadAndLabel) {
  FlightRecorder recorder;
  recorder.Enable(16);
  recorder.Record(FlightKind::kNetState, "link_up", 9000);
  recorder.Record(FlightKind::kLifecycle, "worker_crash", 3, -1);
  EXPECT_EQ(recorder.total_recorded(), 2u);

  std::ostringstream os;
  recorder.DumpJson(os, "test");
  const std::string out = os.str();
  EXPECT_NE(out.find("\"reason\":\"test\""), std::string::npos);
  EXPECT_NE(out.find("\"link_up\""), std::string::npos);
  EXPECT_NE(out.find("\"worker_crash\""), std::string::npos);
  EXPECT_NE(out.find("\"a\":9000"), std::string::npos);
  EXPECT_NE(out.find("\"b\":-1"), std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"net_state\""), std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"lifecycle\""), std::string::npos);
}

TEST(FlightRecorderTest, RingOverwritesOldestBeyondCapacity) {
  FlightRecorder recorder;
  recorder.Enable(4);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(FlightKind::kInstant, "e", i);
  }
  EXPECT_EQ(recorder.total_recorded(), 10u);

  std::ostringstream os;
  recorder.DumpJson(os, "overflow");
  const std::string out = os.str();
  // Only the last 4 events survive; 6 were overwritten.
  EXPECT_NE(out.find("\"recorded\":10"), std::string::npos);
  EXPECT_NE(out.find("\"dropped\":6"), std::string::npos);
  EXPECT_EQ(out.find("\"a\":5"), std::string::npos);
  EXPECT_NE(out.find("\"a\":6"), std::string::npos);
  EXPECT_NE(out.find("\"a\":9"), std::string::npos);
  // Oldest-first within the ring.
  EXPECT_LT(out.find("\"a\":6"), out.find("\"a\":9"));
}

TEST(FlightRecorderTest, LongLabelsTruncateSafely) {
  FlightRecorder recorder;
  recorder.Enable(4);
  const std::string longer(200, 'x');
  recorder.Record(FlightKind::kInstant, longer.c_str());
  std::ostringstream os;
  recorder.DumpJson(os, "truncate");
  const std::string out = os.str();
  EXPECT_NE(out.find(std::string(38, 'x')), std::string::npos);
  EXPECT_EQ(out.find(std::string(39, 'x')), std::string::npos);
}

TEST(FlightRecorderTest, EachThreadGetsItsOwnRing) {
  FlightRecorder recorder;
  recorder.Enable(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Record(FlightKind::kSpan, "work", i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(recorder.total_recorded(),
            static_cast<std::uint64_t>(kThreads * kPerThread));

  std::ostringstream os;
  recorder.DumpJson(os, "threads");
  const std::string out = os.str();
  // One ring per writer thread, each holding all 50 of its events.
  std::size_t rings = 0;
  for (std::size_t pos = out.find("\"ring\":"); pos != std::string::npos;
       pos = out.find("\"ring\":", pos + 1)) {
    ++rings;
  }
  EXPECT_EQ(rings, static_cast<std::size_t>(kThreads));
  EXPECT_NE(out.find("\"recorded\":50"), std::string::npos);
}

TEST(FlightRecorderTest, DumpNowWritesConfiguredPath) {
  FlightRecorder recorder;
  EXPECT_FALSE(recorder.DumpNow("disabled"));
  recorder.Enable(8);
  EXPECT_FALSE(recorder.DumpNow("no path"));
  const std::string path =
      ::testing::TempDir() + "/flight_recorder_test_dump.json";
  recorder.SetDumpPath(path);
  recorder.Record(FlightKind::kAudit, "resync", 1, 2);
  ASSERT_TRUE(recorder.DumpNow("unit"));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"reason\":\"unit\""), std::string::npos);
  EXPECT_NE(content.str().find("\"resync\""), std::string::npos);
}

TEST(FlightRecorderTest, SignalSafeDumpMatchesShape) {
  FlightRecorder recorder;
  recorder.Enable(8);
  recorder.Record(FlightKind::kNetState, "link_down", 9001);
  const std::string path =
      ::testing::TempDir() + "/flight_recorder_test_sigdump.json";
  FILE* file = ::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  recorder.DumpToFdSignalSafe(::fileno(file), 11);
  ::fclose(file);

  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  const std::string out = content.str();
  EXPECT_NE(out.find("\"reason\":\"fatal_signal\""), std::string::npos);
  EXPECT_NE(out.find("\"signal\":11"), std::string::npos);
  EXPECT_NE(out.find("\"link_down\""), std::string::npos);
  EXPECT_NE(out.find("\"a\":9001"), std::string::npos);
}

TEST(FlightRecorderTest, FlightKindNamesAreStable) {
  EXPECT_STREQ(FlightKindName(FlightKind::kSpan), "span");
  EXPECT_STREQ(FlightKindName(FlightKind::kInstant), "instant");
  EXPECT_STREQ(FlightKindName(FlightKind::kAudit), "audit");
  EXPECT_STREQ(FlightKindName(FlightKind::kNetState), "net_state");
  EXPECT_STREQ(FlightKindName(FlightKind::kLifecycle), "lifecycle");
}

}  // namespace
}  // namespace specsync::obs
