// End-to-end observability guarantees on the golden fixed-seed simulation:
//
//  1. Determinism: attaching an ObsContext must not change the trace digest —
//     recording is strictly write-only with respect to the engines.
//  2. Fidelity: the Chrome-trace span set must match the TrainingTrace event
//     for event — every push and abort the trace records has exactly one
//     corresponding span ending at the same (worker, time).
//  3. The scheduler audit log agrees with SchedulerStats.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "data/synthetic.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "models/softmax_regression.h"
#include "obs/obs.h"
#include "runtime/runtime_cluster.h"
#include "trace/trace.h"

namespace specsync {
namespace {

// The golden_trace_test configuration: fixed-seed 8-worker SpecSync-Adaptive
// on the convex workload, two parameter-server shards.
ExperimentResult RunGoldenSim(obs::ObsContext* obs) {
  const Workload workload = MakeConvexWorkload(/*seed=*/1, /*scale=*/0.2);
  ExperimentConfig config;
  config.cluster = ClusterSpec::Homogeneous(8);
  config.cluster.num_servers = 2;
  config.scheme = SchemeSpec::Adaptive();
  config.max_time = SimTime::FromSeconds(240.0);
  config.stop_on_convergence = false;
  config.seed = 41;
  config.obs = obs;
  return RunExperiment(workload, config);
}

// (worker track, event end time) key for span <-> trace matching.
using Key = std::pair<std::uint32_t, double>;

std::vector<Key> SpanKeys(const std::vector<obs::TraceEvent>& events,
                          const std::string& name) {
  std::vector<Key> keys;
  for (const obs::TraceEvent& e : events) {
    if (e.name == name) keys.emplace_back(e.track, e.end().seconds());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(ObsIntegrationTest, TraceDigestIdenticalWithObservabilityOnAndOff) {
  const ExperimentResult plain = RunGoldenSim(nullptr);
  obs::ObsContext ctx;
  const ExperimentResult observed = RunGoldenSim(&ctx);
  EXPECT_EQ(TraceDigest(plain.sim.trace), TraceDigest(observed.sim.trace));
  EXPECT_EQ(plain.final_loss, observed.final_loss);
  EXPECT_EQ(plain.sim.scheduler_stats.resyncs_issued,
            observed.sim.scheduler_stats.resyncs_issued);
  // Non-vacuity: the observed run actually recorded things.
  EXPECT_GT(ctx.spans.event_count(), 0u);
  EXPECT_GT(ctx.audit.check_count(), 0u);
}

TEST(ObsIntegrationTest, SpanSetMatchesTrainingTrace) {
  obs::ObsContext ctx;
  const ExperimentResult result = RunGoldenSim(&ctx);
  const TrainingTrace& trace = result.sim.trace;
  ASSERT_GT(trace.total_pushes(), 100u);
  ASSERT_GT(trace.total_aborts(), 0u);

  const auto events = ctx.spans.Events();

  std::vector<Key> trace_pushes;
  for (const PushEvent& e : trace.pushes()) {
    trace_pushes.emplace_back(e.worker, e.time.seconds());
  }
  std::sort(trace_pushes.begin(), trace_pushes.end());
  EXPECT_EQ(SpanKeys(events, "push"), trace_pushes);

  std::vector<Key> trace_aborts;
  for (const AbortEvent& e : trace.aborts()) {
    trace_aborts.emplace_back(e.worker, e.time.seconds());
  }
  std::sort(trace_aborts.begin(), trace_aborts.end());
  EXPECT_EQ(SpanKeys(events, "aborted_compute"), trace_aborts);

  std::vector<Key> trace_pulls;
  for (const PullEvent& e : trace.pulls()) {
    trace_pulls.emplace_back(e.worker, e.time.seconds());
  }
  std::sort(trace_pulls.begin(), trace_pulls.end());
  EXPECT_EQ(SpanKeys(events, "pull"), trace_pulls);
}

TEST(ObsIntegrationTest, CountersAndAuditAgreeWithSchedulerStats) {
  obs::ObsContext ctx;
  const ExperimentResult result = RunGoldenSim(&ctx);
  const SchedulerStats& stats = result.sim.scheduler_stats;

  const auto counters = ctx.metrics.CounterValues();
  const auto value = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : counters) {
      if (n == name) return v;
    }
    return 0;
  };
  EXPECT_EQ(value("scheduler.notifies"), stats.notifies_received);
  EXPECT_EQ(value("scheduler.checks"), stats.checks_performed);
  EXPECT_EQ(value("scheduler.resyncs"), stats.resyncs_issued);
  EXPECT_EQ(value("scheduler.stale_checks"), stats.stale_checks_skipped);
  EXPECT_EQ(value("scheduler.retunes"), stats.retunes);
  EXPECT_EQ(value("sim.pushes"), result.sim.total_pushes);
  EXPECT_EQ(value("sim.aborts"), result.sim.total_aborts);

  // One audit record per check timer fired (decided and stale alike), one
  // retune record per epoch retune.
  EXPECT_EQ(ctx.audit.check_count(),
            stats.checks_performed + stats.stale_checks_skipped);
  EXPECT_EQ(ctx.audit.retunes().size(), stats.retunes);
  std::uint64_t resync_records = 0;
  for (const obs::CheckRecord& rec : ctx.audit.checks()) {
    if (rec.outcome == obs::CheckOutcome::kResync) ++resync_records;
    if (rec.outcome != obs::CheckOutcome::kStale) {
      // The decision inputs are internally consistent.
      EXPECT_GE(rec.window_end.seconds(), rec.window_begin.seconds());
      EXPECT_LE(rec.window_end.seconds(), rec.armed_deadline.seconds());
      EXPECT_NEAR(rec.abort_time.seconds(),
                  rec.armed_deadline.seconds() - rec.window_begin.seconds(),
                  1e-12);
      EXPECT_DOUBLE_EQ(
          rec.threshold,
          static_cast<double>(rec.active_workers) * rec.abort_rate);
      EXPECT_EQ(rec.outcome == obs::CheckOutcome::kResync,
                static_cast<double>(rec.pushes_seen) >= rec.threshold);
    }
  }
  EXPECT_EQ(resync_records, stats.resyncs_issued);

  // End-of-run gauges mirror the SimResult.
  const auto gauges = ctx.metrics.GaugeValues();
  const auto gauge = [&](const std::string& name) -> double {
    for (const auto& [n, v] : gauges) {
      if (n == name) return v;
    }
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(gauge("sim.total_pushes"),
                   static_cast<double>(result.sim.total_pushes));
  EXPECT_DOUBLE_EQ(gauge("sim.total_aborts"),
                   static_cast<double>(result.sim.total_aborts));
  EXPECT_GT(gauge("sim.wasted_compute_s"), 0.0);
}

// The threaded runtime records the same surfaces from real threads: worker
// threads write spans and PS latency histograms concurrently while the
// scheduler thread appends audit records. (This test is part of the
// sanitizer suites — TSan runs it to race-check the lock-free instruments
// against live worker/scheduler interleavings.)
TEST(ObsIntegrationTest, RuntimeClusterRecordsAllSurfaces) {
  Rng rng(5);
  ClassificationSpec spec;
  spec.num_examples = 200;
  spec.feature_dim = 8;
  spec.num_classes = 3;
  auto data = std::make_shared<ClassificationDataset>(
      GenerateClassification(spec, rng));
  auto model = std::make_shared<SoftmaxRegressionModel>(
      std::move(data), SoftmaxRegressionConfig{});

  RuntimeConfig config;
  config.num_workers = 4;
  config.iterations_per_worker = 12;
  config.batch_size = 16;
  config.compute_chunks = 4;
  config.chunk_delay = std::chrono::microseconds(100);
  config.fixed_params.abort_time = Duration::Milliseconds(0.5);
  config.fixed_params.abort_rate = 0.25;

  obs::ObsContext ctx;
  config.obs = &ctx;
  RuntimeCluster cluster(std::move(model),
                         std::make_shared<ConstantSchedule>(0.1), config);
  const RuntimeResult result = cluster.Run();

  const auto counters = ctx.metrics.CounterValues();
  const auto value = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : counters) {
      if (n == name) return v;
    }
    return 0;
  };
  EXPECT_EQ(value("runtime.pushes"), result.total_pushes);
  EXPECT_EQ(value("runtime.aborts"), result.total_aborts);
  EXPECT_EQ(value("scheduler.notifies"), result.scheduler_stats.notifies_received);
  EXPECT_EQ(value("scheduler.resyncs"), result.scheduler_stats.resyncs_issued);
  EXPECT_EQ(ctx.audit.check_count(),
            result.scheduler_stats.checks_performed +
                result.scheduler_stats.stale_checks_skipped);

  // Wall-time surfaces: per-attempt iteration walls and PS service times.
  std::uint64_t iteration_samples = 0;
  std::uint64_t pull_samples = 0;
  for (const auto& [name, hist] : ctx.metrics.Histograms()) {
    if (name == "runtime.iteration_s") iteration_samples = hist->count();
    if (name == "ps.pull_s") pull_samples = hist->count();
  }
  EXPECT_GE(iteration_samples, result.total_pushes);
  EXPECT_GE(pull_samples, result.total_pushes);

  // Every completed push and abort produced a span on some worker track.
  std::uint64_t push_spans = 0;
  std::uint64_t abort_spans = 0;
  for (const obs::TraceEvent& e : ctx.spans.Events()) {
    if (e.name == "push") ++push_spans;
    if (e.name == "aborted_compute") ++abort_spans;
  }
  EXPECT_EQ(push_spans, result.total_pushes);
  EXPECT_EQ(abort_spans, result.total_aborts);
}

}  // namespace
}  // namespace specsync
