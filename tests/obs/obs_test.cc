// Unit tests for the observability layer (src/obs): metrics instruments and
// registry, span recorder + Chrome trace export, decision audit log, and the
// metrics.json / Prometheus snapshot exporters.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/audit_log.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/span_recorder.h"

namespace specsync::obs {
namespace {

SimTime T(double s) { return SimTime::FromSeconds(s); }

// --- metrics ----------------------------------------------------------------

TEST(MetricsTest, CounterIncrements) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(5);
  EXPECT_EQ(c.value(), 6u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(MetricsTest, HistogramBucketsDoubling) {
  LatencyHistogram h;
  h.Record(0.5e-6);  // <= 1us -> bucket 0
  h.Record(1.5e-6);  // (1us, 2us] -> bucket 1
  h.Record(3.0e-6);  // (2us, 4us] -> bucket 2
  h.Record(1.0);     // seconds range
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 1.0);
  EXPECT_NEAR(h.sum_seconds(), 1.0 + 4.5e-6 + 0.5e-6, 1e-12);
  EXPECT_NEAR(h.mean_seconds(), h.sum_seconds() / 4.0, 1e-15);
}

TEST(MetricsTest, HistogramUpperBounds) {
  EXPECT_DOUBLE_EQ(LatencyHistogram::UpperBoundSeconds(0), 1e-6);
  EXPECT_DOUBLE_EQ(LatencyHistogram::UpperBoundSeconds(1), 2e-6);
  EXPECT_TRUE(std::isinf(
      LatencyHistogram::UpperBoundSeconds(LatencyHistogram::kBuckets - 1)));
}

TEST(MetricsTest, HistogramNegativeSampleClampsToZero) {
  LatencyHistogram h;
  h.Record(-1.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_DOUBLE_EQ(h.sum_seconds(), 0.0);
}

TEST(MetricsTest, HistogramMergeAddsBucketwise) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(1e-3);
  b.Record(1e-3);
  b.Record(2.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max_seconds(), 2.0);
  EXPECT_NEAR(a.sum_seconds(), 2.002, 1e-12);
  // b unchanged.
  EXPECT_EQ(b.count(), 2u);
}

TEST(MetricsTest, HistogramQuantilesBracketObservations) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.Record(1e-3);  // all in one bucket
  const double p50 = h.ApproxQuantileSeconds(0.5);
  // The bucket containing 1ms is (512us, 1024us]; the estimate must land in
  // it.
  EXPECT_GE(p50, 512e-6);
  EXPECT_LE(p50, 1024e-6);
  EXPECT_LE(h.ApproxQuantileSeconds(0.1), h.ApproxQuantileSeconds(0.99));
  LatencyHistogram empty;
  EXPECT_EQ(empty.ApproxQuantileSeconds(0.5), 0.0);
}

TEST(MetricsTest, HistogramQuantileDegenerateCasesPinned) {
  // The three degenerate cases documented on ApproxQuantileSeconds — every
  // one must return a FINITE number (exporters turn non-finite into null, but
  // the quantile itself must never need that escape hatch).
  LatencyHistogram empty;
  for (const double q : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(empty.ApproxQuantileSeconds(q), 0.0) << "q=" << q;
  }

  // All observations in bucket 0 (the sub-1us bucket has no lower log edge,
  // so interpolation is pinned to min(max, first upper bound)).
  LatencyHistogram sub_us;
  sub_us.Record(1e-9);
  sub_us.Record(2e-9);
  for (const double q : {0.01, 0.5, 0.99}) {
    const double v = sub_us.ApproxQuantileSeconds(q);
    EXPECT_TRUE(std::isfinite(v)) << "q=" << q;
    EXPECT_EQ(v, std::min(sub_us.max_seconds(),
                          LatencyHistogram::kFirstUpperBoundSeconds))
        << "q=" << q;
  }

  // Quantile landing in the open-ended last bucket: capped at the observed
  // max, never the bucket's infinite upper bound.
  LatencyHistogram huge;
  huge.Record(1e10);  // beyond UpperBoundSeconds(kBuckets - 2): last bucket
  const double p99 = huge.ApproxQuantileSeconds(0.99);
  EXPECT_TRUE(std::isfinite(p99));
  EXPECT_LE(p99, huge.max_seconds());
  EXPECT_EQ(huge.ApproxQuantileSeconds(1.0), huge.max_seconds());
}

TEST(ObsExportTest, HistogramJsonNeverEmitsNaN) {
  // Exporters must survive every degenerate histogram: empty, bucket-0-only,
  // and last-bucket-only must all serialize to valid finite JSON (non-finite
  // values would have to become null, and "nan"/"inf" must never appear).
  ObsContext ctx;
  (void)ctx.metrics.histogram("h.empty");
  ctx.metrics.histogram("h.subus").Record(1e-9);
  ctx.metrics.histogram("h.huge").Record(1e10);
  std::ostringstream os;
  WriteMetricsJson(ctx, os);
  const std::string out = os.str();
  EXPECT_EQ(out.find("nan"), std::string::npos);
  EXPECT_EQ(out.find("inf"), std::string::npos);
  EXPECT_NE(out.find("\"h.huge\""), std::string::npos);
}

TEST(MetricsTest, ScopedTimerRecordsOneSample) {
  LatencyHistogram h;
  { ScopedTimer timer(&h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum_seconds(), 0.0);
}

TEST(MetricsTest, ScopedTimerNullIsNoop) {
  ScopedTimer timer(nullptr);  // must not crash or record
}

TEST(MetricsTest, RegistryReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  a.Increment();
  // Forcing rebalancing of the map must not invalidate `a`.
  for (int i = 0; i < 100; ++i) {
    registry.counter("c" + std::to_string(i));
  }
  Counter& again = registry.counter("x");
  EXPECT_EQ(&a, &again);
  EXPECT_EQ(again.value(), 1u);
}

TEST(MetricsTest, RegistrySnapshotsAreNameSorted) {
  MetricsRegistry registry;
  registry.counter("zeta").Increment(2);
  registry.counter("alpha").Increment(1);
  registry.gauge("g").Set(1.5);
  registry.histogram("h").Record(0.25);
  const auto counters = registry.CounterValues();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "alpha");
  EXPECT_EQ(counters[1].first, "zeta");
  EXPECT_EQ(counters[1].second, 2u);
  ASSERT_EQ(registry.GaugeValues().size(), 1u);
  ASSERT_EQ(registry.Histograms().size(), 1u);
  EXPECT_EQ(registry.Histograms()[0].second->count(), 1u);
}

TEST(MetricsTest, ConcurrentRecordingLosesNothing) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("hits");
  LatencyHistogram& hist = registry.histogram("lat");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        hist.Record(1e-4);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

// --- span recorder ----------------------------------------------------------

TEST(SpanRecorderTest, RecordsSpansAndInstantsInOrder) {
  SpanRecorder spans;
  spans.AddSpan("compute", "compute", 0, T(1.0), T(2.5));
  spans.AddInstant("notify", "control", 0, T(2.5));
  EXPECT_EQ(spans.event_count(), 2u);
  const auto events = spans.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "compute");
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kSpan);
  EXPECT_DOUBLE_EQ(events[0].end().seconds(), 2.5);
  EXPECT_DOUBLE_EQ(events[0].duration.seconds(), 1.5);
  EXPECT_EQ(events[1].phase, TraceEvent::Phase::kInstant);
  EXPECT_DOUBLE_EQ(events[1].duration.seconds(), 0.0);
}

TEST(SpanRecorderTest, ChromeTraceJsonShape) {
  SpanRecorder spans;
  spans.SetTrackName(0, "worker 0");
  spans.AddSpan("compute", "compute", 0, T(1.0), T(2.0),
                {{"iteration", "7"}, {"note", "abc"}});
  spans.AddInstant("notify", "control", 0, T(2.0));
  std::ostringstream os;
  spans.ExportChromeTrace(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  // Track-name metadata event.
  EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(out.find("worker 0"), std::string::npos);
  // Complete event: 1s -> 1e6 us timestamp, 1e6 us duration.
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"ts\":1000000"), std::string::npos);
  EXPECT_NE(out.find("\"dur\":1000000"), std::string::npos);
  // Instant event with thread scope.
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  // Numeric args are emitted unquoted, strings quoted.
  EXPECT_NE(out.find("\"iteration\":7"), std::string::npos);
  EXPECT_NE(out.find("\"note\":\"abc\""), std::string::npos);
}

TEST(SpanRecorderTest, ConcurrentAppendsAllLand) {
  SpanRecorder spans;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        spans.AddSpan("s", "c", static_cast<std::uint32_t>(t),
                      T(static_cast<double>(i)),
                      T(static_cast<double>(i) + 0.5));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(spans.event_count(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

// --- audit log --------------------------------------------------------------

TEST(AuditLogTest, RecordsChecksAndRetunes) {
  DecisionAuditLog log;
  CheckRecord check;
  check.worker = 2;
  check.token = 17;
  check.fired_at = T(3.0);
  check.outcome = CheckOutcome::kResync;
  check.window_begin = T(2.5);
  check.window_end = T(3.0);
  check.armed_deadline = T(3.0);
  check.pushes_seen = 4;
  check.abort_time = Duration::Seconds(0.5);
  check.abort_rate = 0.3;
  check.threshold = 1.2;
  check.active_workers = 4;
  log.RecordCheck(check);
  RetuneRecord retune;
  retune.epoch = 1;
  retune.at = T(4.0);
  retune.abort_time = Duration::Seconds(0.4);
  retune.abort_rate = 0.25;
  retune.epoch_pushes = 12;
  log.RecordRetune(retune);

  EXPECT_EQ(log.check_count(), 1u);
  const auto checks = log.checks();
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_EQ(checks[0].worker, 2u);
  EXPECT_EQ(checks[0].outcome, CheckOutcome::kResync);
  EXPECT_EQ(checks[0].pushes_seen, 4u);
  const auto retunes = log.retunes();
  ASSERT_EQ(retunes.size(), 1u);
  EXPECT_EQ(retunes[0].epoch_pushes, 12u);

  std::ostringstream os;
  log.ExportJson(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"checks\""), std::string::npos);
  EXPECT_NE(out.find("\"resync\""), std::string::npos);
  EXPECT_NE(out.find("\"retunes\""), std::string::npos);
}

TEST(AuditLogTest, OutcomeNames) {
  EXPECT_STREQ(CheckOutcomeName(CheckOutcome::kStale), "stale");
  EXPECT_STREQ(CheckOutcomeName(CheckOutcome::kKeep), "keep");
  EXPECT_STREQ(CheckOutcomeName(CheckOutcome::kResync), "resync");
}

// --- snapshot exporters -----------------------------------------------------

TEST(ObsExportTest, MetricsJsonContainsAllSections) {
  ObsContext ctx;
  ctx.metrics.counter("scheduler.resyncs").Increment(3);
  ctx.metrics.gauge("sim.final_loss").Set(0.5);
  ctx.metrics.histogram("ps.pull_s").Record(1e-3);
  ctx.spans.AddSpan("compute", "compute", 0, T(0.0), T(1.0));
  CheckRecord check;
  check.outcome = CheckOutcome::kKeep;
  ctx.audit.RecordCheck(check);

  std::ostringstream os;
  WriteMetricsJson(ctx, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"counters\""), std::string::npos);
  EXPECT_NE(out.find("\"scheduler.resyncs\":3"), std::string::npos);
  EXPECT_NE(out.find("\"gauges\""), std::string::npos);
  EXPECT_NE(out.find("\"histograms\""), std::string::npos);
  EXPECT_NE(out.find("\"p95_s\""), std::string::npos);
  EXPECT_NE(out.find("\"span_events\":1"), std::string::npos);
  EXPECT_NE(out.find("\"decision_audit\""), std::string::npos);
  EXPECT_NE(out.find("\"keep\""), std::string::npos);
}

TEST(ObsExportTest, PrometheusTextShape) {
  ObsContext ctx;
  ctx.metrics.counter("sim.pushes").Increment(10);
  ctx.metrics.gauge("sim.final_loss").Set(0.25);
  ctx.metrics.histogram("ps.pull_s").Record(1e-3);
  ctx.metrics.histogram("ps.pull_s").Record(2e-3);

  std::ostringstream os;
  WriteMetricsPrometheus(ctx.metrics, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# TYPE sim_pushes counter"), std::string::npos);
  EXPECT_NE(out.find("sim_pushes 10"), std::string::npos);
  EXPECT_NE(out.find("# TYPE sim_final_loss gauge"), std::string::npos);
  EXPECT_NE(out.find("# TYPE ps_pull_s histogram"), std::string::npos);
  // The +Inf bucket carries the total count, and appears exactly once.
  EXPECT_NE(out.find("ps_pull_s_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_EQ(out.find("+Inf"), out.rfind("+Inf"));
  EXPECT_NE(out.find("ps_pull_s_count 2"), std::string::npos);
}

TEST(ObsExportTest, PrometheusLabeledMetricsSplitNameAndLabels) {
  ObsContext ctx;
  ctx.metrics.counter("net.link.reconnects{link=127.0.0.1:9000}").Increment(2);
  ctx.metrics.counter("net.link.reconnects{link=127.0.0.1:9001}").Increment(5);
  ctx.metrics.gauge("net.link.pending_depth{link=127.0.0.1:9000}").Set(3.0);
  ctx.metrics.histogram("net.rtt_s{link=127.0.0.1:9000}").Record(1e-3);

  std::ostringstream os;
  WriteMetricsPrometheus(ctx.metrics, os);
  const std::string out = os.str();
  // Embedded labels split off the name; values are quoted.
  EXPECT_NE(out.find("net_link_reconnects{link=\"127.0.0.1:9000\"} 2"),
            std::string::npos);
  EXPECT_NE(out.find("net_link_reconnects{link=\"127.0.0.1:9001\"} 5"),
            std::string::npos);
  EXPECT_NE(out.find("net_link_pending_depth{link=\"127.0.0.1:9000\"} 3"),
            std::string::npos);
  // One # TYPE line per family even with several labeled variants.
  const std::string type_line = "# TYPE net_link_reconnects counter";
  const auto first = out.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(out.find(type_line, first + 1), std::string::npos);
  // Histogram labels merge with the le bucket label.
  EXPECT_NE(out.find("net_rtt_s_bucket{link=\"127.0.0.1:9000\",le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(out.find("net_rtt_s_count{link=\"127.0.0.1:9000\"} 1"),
            std::string::npos);
}

TEST(ObsExportTest, PrometheusNameAndLabelSanitization) {
  ObsContext ctx;
  // Dots/dashes fold to underscores; a leading digit gets a prefix.
  ctx.metrics.counter("9lives.cat-metric").Increment();
  // Label values must escape backslash, quote, and newline per the
  // exposition format — and survive a round trip through the escaping.
  const std::string raw_value = "pa\\th\"quo\nte";
  ctx.metrics.counter("weird{path=" + raw_value + "}").Increment();

  std::ostringstream os;
  WriteMetricsPrometheus(ctx.metrics, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("_9lives_cat_metric 1"), std::string::npos);
  const std::string escaped = "weird{path=\"pa\\\\th\\\"quo\\nte\"} 1";
  const auto pos = out.find(escaped);
  ASSERT_NE(pos, std::string::npos) << out;

  // Round trip: un-escaping the exported value restores the raw label value.
  std::string exported = out.substr(out.find("path=\"", pos) + 6);
  exported = exported.substr(0, exported.find("\"} 1"));
  std::string unescaped;
  for (std::size_t i = 0; i < exported.size(); ++i) {
    if (exported[i] == '\\' && i + 1 < exported.size()) {
      const char next = exported[++i];
      unescaped += next == 'n' ? '\n' : next;
    } else {
      unescaped += exported[i];
    }
  }
  EXPECT_EQ(unescaped, raw_value);
}

TEST(ObsExportTest, PrometheusMalformedLabelBlockKeptVerbatim) {
  ObsContext ctx;
  // An unparsable label block (no '=' inside) is not a label convention hit:
  // the whole composite name sanitizes as one identifier instead of emitting
  // invalid exposition syntax.
  ctx.metrics.counter("odd{notalabel}").Increment();
  std::ostringstream os;
  WriteMetricsPrometheus(ctx.metrics, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("odd_notalabel_ 1"), std::string::npos);
  EXPECT_EQ(out.find("odd{"), std::string::npos);
}

TEST(SpanRecorderTest, FlowEventsExportAsChromeFlowPairs) {
  SpanRecorder spans;
  spans.SetProcessInfo(42, "bench_client");
  spans.SetWallEpochNanos(1234567890);
  spans.AddSpanWithFlow("pull.req", "net.client", 0, T(1.0), T(2.0),
                        /*flow_out=*/0xabc, /*flow_in=*/0);
  spans.AddSpanWithFlow("serve.pull", "net.server", 1, T(1.2), T(1.8),
                        /*flow_out=*/0, /*flow_in=*/0xabc);
  std::ostringstream os;
  spans.ExportChromeTrace(os);
  const std::string out = os.str();
  // Flow begin rides the producing span's start; flow end encloses the
  // consumer. Ids are hex strings (u64 does not fit JSON doubles).
  EXPECT_NE(out.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(out.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(out.find("\"id\":\"0xabc\""), std::string::npos);
  // Process identity + clock epoch for the cross-process merge tool.
  EXPECT_NE(out.find("\"clock_epoch_ns\":1234567890"), std::string::npos);
  EXPECT_NE(out.find("\"process_name\""), std::string::npos);
  EXPECT_NE(out.find("bench_client"), std::string::npos);
  EXPECT_NE(out.find("\"pid\":42"), std::string::npos);
}

TEST(ObsExportTest, FileWritersRoundTrip) {
  ObsContext ctx;
  ctx.metrics.counter("c").Increment();
  ctx.spans.AddSpan("s", "c", 0, T(0.0), T(1.0));
  const std::string dir = ::testing::TempDir();
  EXPECT_TRUE(WriteMetricsJsonFile(ctx, dir + "/obs_test_metrics.json"));
  EXPECT_TRUE(WriteChromeTraceFile(ctx.spans, dir + "/obs_test_trace.json"));
  EXPECT_FALSE(WriteMetricsJsonFile(ctx, "/nonexistent-dir/metrics.json"));
}

}  // namespace
}  // namespace specsync::obs
