// Threaded hammer for the consistency gate and the per-shard/dynamic SSP
// controllers. The property harness (tests/ps) proves the gating math
// single-threaded and decision-exact; this file proves the same objects are
// safe and live under real contention — many worker threads pounding
// WaitToStart/OnPush while churn (down/up) and shutdown race them. It is part
// of the TSan/ASan suite list in scripts/sanitize.sh: the assertions here are
// deliberately coarse (quotas complete, counters reconcile), because the
// sanitizers are the real oracle.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "models/softmax_regression.h"
#include "obs/obs.h"
#include "ps/consistency.h"
#include "ps/consistency_gate.h"
#include "runtime/runtime_cluster.h"
#include "runtime/wall_clock.h"

namespace specsync {
namespace {

// Watchdog: fails the test loudly instead of hanging ctest if the gate ever
// wedges. Shutdown() releases every waiter with a false return, which the
// worker loops treat as abort.
class GateWatchdog {
 public:
  GateWatchdog(ConsistencyGate& gate, std::chrono::seconds budget)
      : thread_([&gate, budget, this] {
          std::unique_lock<std::mutex> lock(mu_);
          if (!cv_.wait_for(lock, budget, [this] { return done_; })) {
            fired_.store(true);
            gate.Shutdown();
          }
        }) {}
  ~GateWatchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
  bool fired() const { return fired_.load(); }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::atomic<bool> fired_{false};
  std::jthread thread_;
};

TEST(ConsistencyHammerTest, ManyThreadsCompleteUnderTightBound) {
  constexpr std::size_t kWorkers = 8;
  constexpr std::size_t kShards = 4;
  constexpr std::uint64_t kQuota = 200;
  // Declare the write sets up front so the bound binds from iteration 0: a
  // learned (lazy) write set would leave not-yet-spawned workers invisible
  // and let the first thread blast through its quota uncontested.
  auto controller = MakePerShardSsp(kWorkers, kShards, /*staleness=*/1);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    static_cast<PerShardSspController&>(*controller)
        .SetWriteSet(w, {w % kShards, (w + 1) % kShards});
  }
  ConsistencyGate gate(std::move(controller));
  GateWatchdog watchdog(gate, std::chrono::seconds(60));
  WallClock clock;
  std::atomic<std::uint64_t> total_pushes{0};
  std::atomic<bool> aborted{false};
  {
    std::vector<std::jthread> workers;
    for (std::size_t w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        for (std::uint64_t t = 0; t < kQuota; ++t) {
          if (!gate.WaitToStart(w, t)) {
            aborted.store(true);
            return;
          }
          // Touch a worker-dependent pair of shards so write sets overlap
          // without being identical.
          const std::size_t touched[] = {w % kShards, (w + 1) % kShards};
          gate.OnPush(w, t, clock.Now(), touched);
          total_pushes.fetch_add(1);
        }
      });
    }
  }
  EXPECT_FALSE(watchdog.fired());
  EXPECT_FALSE(aborted.load());
  EXPECT_EQ(total_pushes.load(), kWorkers * kQuota);
  // With s=1 and eight free-running threads the gate must have actually
  // blocked somebody along the way.
  EXPECT_GT(gate.blocks(), 0u);
  const auto& pssp =
      static_cast<const PerShardSspController&>(gate.controller());
  for (std::size_t w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(pssp.completed(w), kQuota) << "worker " << w;
  }
}

TEST(ConsistencyHammerTest, CrashChurnNeverWedgesTheGate) {
  // Workers repeatedly "crash" (OnWorkerDown), sleep out the outage, and
  // rejoin (OnWorkerUp) mid-run — the runtime's crash path, concentrated.
  // Peers must keep progressing while a worker is down, and the rejoined
  // worker must be admitted again at its old clocks.
  constexpr std::size_t kWorkers = 6;
  constexpr std::size_t kShards = 3;
  constexpr std::uint64_t kQuota = 150;
  ConsistencyGate gate(MakePerShardSsp(kWorkers, kShards, /*staleness=*/2));
  GateWatchdog watchdog(gate, std::chrono::seconds(60));
  WallClock clock;
  std::atomic<bool> aborted{false};
  {
    std::vector<std::jthread> workers;
    for (std::size_t w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        for (std::uint64_t t = 0; t < kQuota; ++t) {
          // Every worker takes three outages at worker-dependent points.
          if (t % 50 == (w * 7) % 50 && t > 0) {
            gate.OnWorkerDown(w);
            std::this_thread::sleep_for(std::chrono::microseconds(300));
            gate.OnWorkerUp(w);
          }
          if (!gate.WaitToStart(w, t)) {
            aborted.store(true);
            return;
          }
          const std::size_t touched[] = {w % kShards};
          gate.OnPush(w, t, clock.Now(), touched);
        }
      });
    }
  }
  EXPECT_FALSE(watchdog.fired());
  EXPECT_FALSE(aborted.load());
  const auto& pssp =
      static_cast<const PerShardSspController&>(gate.controller());
  for (std::size_t w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(pssp.completed(w), kQuota) << "worker " << w;
    EXPECT_TRUE(pssp.live(w)) << "worker " << w;
  }
}

TEST(ConsistencyHammerTest, DynamicControllerRetunesUnderConcurrentAudit) {
  // DSSP's retune path runs on whichever worker thread happens to close an
  // epoch, appending to the (mutex-guarded) audit log while other threads
  // push — exactly the concurrency the runtime produces. One thread is
  // artificially slow so retunes actually fire.
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kShards = 2;
  constexpr std::uint64_t kQuota = 120;
  DynamicSspConfig config;
  // Floor start: under BSP lockstep the measured ratio is ~1 plus scheduling
  // noise, and any ratio above 1 already moves the bound off 0 — after which
  // the fast workers run free and the real 10x ratio expresses itself.
  config.initial_staleness = 0;
  config.max_staleness = 8;
  auto controller = MakeDynamicSsp(kWorkers, kShards, config);
  auto* dssp = static_cast<DynamicSspController*>(controller.get());
  obs::DecisionAuditLog audit;
  dssp->AttachAudit(&audit);
  ConsistencyGate gate(std::move(controller));
  GateWatchdog watchdog(gate, std::chrono::seconds(60));
  WallClock clock;
  std::atomic<bool> aborted{false};
  {
    std::vector<std::jthread> workers;
    for (std::size_t w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        for (std::uint64_t t = 0; t < kQuota; ++t) {
          if (!gate.WaitToStart(w, t)) {
            aborted.store(true);
            return;
          }
          // Worker 0 is the straggler: ~10x the others' inter-push gap.
          std::this_thread::sleep_for(
              std::chrono::microseconds(w == 0 ? 500 : 50));
          const std::size_t touched[] = {w % kShards, (w + 1) % kShards};
          gate.OnPush(w, t, clock.Now(), touched);
        }
      });
    }
  }
  EXPECT_FALSE(watchdog.fired());
  EXPECT_FALSE(aborted.load());
  EXPECT_GT(dssp->retunes(), 0u);
  // Concurrent appends reconcile: one staleness record per retune, none lost.
  std::size_t staleness_records = 0;
  for (const obs::RetuneRecord& record : audit.retunes()) {
    if (record.kind == obs::RetuneKind::kStaleness) ++staleness_records;
  }
  EXPECT_EQ(staleness_records, dssp->retunes());
  EXPECT_GE(dssp->staleness(), config.min_staleness);
  EXPECT_LE(dssp->staleness(), config.max_staleness);
}

TEST(ConsistencyHammerTest, ShutdownReleasesBlockedWaiters) {
  // Worker 1 never pushes, so worker 0 wedges at the bound; Shutdown must
  // wake it with a false return (the runtime's teardown path).
  ConsistencyGate gate(MakePerShardSsp(2, 1, /*staleness=*/0));
  WallClock clock;
  // Learn both write sets so the bound binds.
  const std::size_t shard0[] = {0};
  gate.OnPush(0, 0, clock.Now(), shard0);
  gate.OnPush(1, 0, clock.Now(), shard0);
  std::atomic<int> verdict{-1};
  std::jthread blocked([&] {
    // Iteration 2 needs min completed >= 2; worker 1 stays at 1 forever.
    verdict.store(gate.WaitToStart(0, 2) ? 1 : 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(verdict.load(), -1);  // genuinely blocked
  gate.Shutdown();
  blocked.join();
  EXPECT_EQ(verdict.load(), 0);
  EXPECT_FALSE(gate.WaitToStart(1, 1));  // post-shutdown calls refuse too
}

// --- full runtime under gating + fault injection ---------------------------

std::shared_ptr<const Model> TinyModel(std::uint64_t seed) {
  Rng rng(seed);
  ClassificationSpec spec;
  spec.num_examples = 300;
  spec.feature_dim = 8;
  spec.num_classes = 3;
  auto data = std::make_shared<ClassificationDataset>(
      GenerateClassification(spec, rng));
  return std::make_shared<SoftmaxRegressionModel>(std::move(data),
                                                  SoftmaxRegressionConfig{});
}

TEST(ConsistencyHammerTest, RuntimeSspWithCrashRejoinCompletesQuota) {
  // End to end: gated runtime threads + FaultMailbox-driven crash/rejoin.
  // The crashed worker must be excused (peers keep training through the
  // outage instead of wedging at the bound) and re-admitted on rejoin.
  RuntimeConfig config;
  config.num_workers = 4;
  config.iterations_per_worker = 25;
  config.batch_size = 16;
  config.compute_chunks = 4;
  config.chunk_delay = std::chrono::microseconds(200);
  config.consistency.scheme = RuntimeConsistency::kSsp;
  config.consistency.staleness = 1;
  config.faults.crashes.push_back(CrashEvent{
      2, SimTime::FromSeconds(0.005), SimTime::FromSeconds(0.030)});
  RuntimeCluster cluster(TinyModel(11), std::make_shared<ConstantSchedule>(0.1),
                         config);
  const RuntimeResult result = cluster.Run();
  EXPECT_EQ(result.total_pushes, 100u);
  EXPECT_EQ(result.workers_killed, 0u);
  EXPECT_EQ(result.fault_stats.crashes, 1u);
  EXPECT_EQ(result.fault_stats.rejoins, 1u);
  EXPECT_TRUE(AllFinite(result.final_weights));
}

TEST(ConsistencyHammerTest, RuntimeDsspSurvivesLossyControlPlaneAndDeath) {
  // Hardest combination: dynamic bound, lossy control links, and a permanent
  // worker death. The gate must excuse the corpse (no deadlock at the bound),
  // DSSP keeps retuning its epoch statistics over the survivors, and the
  // audit trail stays complete.
  RuntimeConfig config;
  config.num_workers = 4;
  config.iterations_per_worker = 30;
  config.batch_size = 16;
  config.compute_chunks = 4;
  config.chunk_delay = std::chrono::microseconds(300);
  config.consistency.scheme = RuntimeConsistency::kDssp;
  config.consistency.dssp.initial_staleness = 1;
  config.faults.control.drop_probability = 0.10;
  config.faults.control.delay_probability = 0.2;
  config.faults.control.delay_mean = Duration::Milliseconds(1.0);
  config.faults.crashes.push_back(
      CrashEvent{3, SimTime::FromSeconds(0.02), std::nullopt});
  // Slow worker 0 so the straggler ratio is real.
  config.faults.slowdowns.push_back(SlowdownWindow{
      0, SimTime::Zero(), SimTime::FromSeconds(3600.0), 6.0});
  obs::ObsContext ctx;
  config.obs = &ctx;
  RuntimeCluster cluster(TinyModel(12), std::make_shared<ConstantSchedule>(0.1),
                         config);
  const RuntimeResult result = cluster.Run();
  EXPECT_EQ(result.workers_killed, 1u);
  EXPECT_GE(result.total_pushes, 90u);   // survivors finish their quotas
  EXPECT_LT(result.total_pushes, 120u);  // the corpse's quota stays unmet
  EXPECT_TRUE(AllFinite(result.final_weights));
  std::size_t staleness_records = 0;
  for (const obs::RetuneRecord& record : ctx.audit.retunes()) {
    if (record.kind == obs::RetuneKind::kStaleness) ++staleness_records;
  }
  EXPECT_EQ(staleness_records, result.consistency_retunes);
}

}  // namespace
}  // namespace specsync
