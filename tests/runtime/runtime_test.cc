// Tests for the threaded runtime: mailbox semantics and the full in-process
// cluster under real concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "data/synthetic.h"
#include "models/matrix_factorization.h"
#include "models/softmax_regression.h"
#include "runtime/mailbox.h"
#include "runtime/runtime_cluster.h"
#include "tensor/vector.h"

namespace specsync {
namespace {

TEST(MailboxTest, SendReceiveOrder) {
  Mailbox<int> box;
  EXPECT_TRUE(box.Send(1));
  EXPECT_TRUE(box.Send(2));
  EXPECT_EQ(box.size(), 2u);
  EXPECT_EQ(box.Receive(), 1);
  EXPECT_EQ(box.Receive(), 2);
}

TEST(MailboxTest, TryReceiveEmpty) {
  Mailbox<int> box;
  EXPECT_EQ(box.TryReceive(), std::nullopt);
}

TEST(MailboxTest, CloseReleasesReceiversAndRejectsSends) {
  Mailbox<int> box;
  box.Send(7);
  box.Close();
  EXPECT_FALSE(box.Send(8));
  // Messages sent before close still drain.
  EXPECT_EQ(box.Receive(), 7);
  EXPECT_EQ(box.Receive(), std::nullopt);
  EXPECT_TRUE(box.closed());
}

TEST(MailboxTest, BlockingReceiveWakesOnSend) {
  Mailbox<int> box;
  std::atomic<int> got{0};
  std::jthread receiver([&] {
    auto value = box.Receive();
    got.store(value.value_or(-1));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  box.Send(42);
  receiver.join();
  EXPECT_EQ(got.load(), 42);
}

TEST(MailboxTest, ReceiveUntilTimesOut) {
  Mailbox<int> box;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  EXPECT_EQ(box.ReceiveUntil(deadline), std::nullopt);
  EXPECT_FALSE(box.closed());
}

TEST(MailboxTest, ManyProducersOneConsumer) {
  Mailbox<int> box;
  constexpr int kPerProducer = 200;
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&box] {
        for (int i = 0; i < kPerProducer; ++i) box.Send(1);
      });
    }
  }
  int total = 0;
  while (auto v = box.TryReceive()) total += *v;
  EXPECT_EQ(total, 4 * kPerProducer);
}

TEST(MailboxTest, PollStatusDistinguishesEmptyFromDrained) {
  Mailbox<int> box;
  int out = 0;
  // Open + empty: more may arrive.
  EXPECT_EQ(box.TryReceive(out), MailboxPoll::kEmpty);
  EXPECT_FALSE(box.drained());
  box.Send(5);
  EXPECT_EQ(box.TryReceive(out), MailboxPoll::kMessage);
  EXPECT_EQ(out, 5);
  box.Send(6);
  box.Close();
  // Closed but not yet drained: the queued message must still come out.
  EXPECT_FALSE(box.drained());
  EXPECT_EQ(box.TryReceive(out), MailboxPoll::kMessage);
  EXPECT_EQ(out, 6);
  // Closed + empty: nothing can ever arrive again.
  EXPECT_EQ(box.TryReceive(out), MailboxPoll::kDrained);
  EXPECT_TRUE(box.drained());
}

TEST(MailboxTest, DrainLoopTerminatesOnPollStatus) {
  // The termination idiom the old bool-optional API couldn't express: poll
  // until kDrained, never spinning forever and never losing pre-close sends.
  Mailbox<int> box;
  {
    std::jthread producer([&box] {
      for (int i = 0; i < 100; ++i) box.Send(i);
      box.Close();
    });
  }
  int received = 0;
  for (;;) {
    int out = 0;
    const MailboxPoll poll = box.TryReceive(out);
    if (poll == MailboxPoll::kDrained) break;
    if (poll == MailboxPoll::kMessage) ++received;
  }
  EXPECT_EQ(received, 100);
}

// --- runtime cluster ----------------------------------------------------------

std::shared_ptr<const Model> TinyModel(std::uint64_t seed) {
  Rng rng(seed);
  ClassificationSpec spec;
  spec.num_examples = 300;
  spec.feature_dim = 8;
  spec.num_classes = 3;
  auto data = std::make_shared<ClassificationDataset>(
      GenerateClassification(spec, rng));
  return std::make_shared<SoftmaxRegressionModel>(std::move(data),
                                                  SoftmaxRegressionConfig{});
}

TEST(RuntimeClusterTest, PlainAsyncTrainingCompletes) {
  RuntimeConfig config;
  config.num_workers = 3;
  config.iterations_per_worker = 15;
  config.batch_size = 16;
  auto model = TinyModel(1);
  const double init_loss = [&] {
    Rng rng(config.seed);
    std::vector<double> params(model->param_dim());
    model->InitParams(params, rng);
    return model->FullLoss(params, 300);
  }();
  RuntimeCluster cluster(model, std::make_shared<ConstantSchedule>(0.2),
                         config);
  const RuntimeResult result = cluster.Run();
  EXPECT_EQ(result.total_pushes, 45u);
  EXPECT_EQ(result.total_aborts, 0u);
  EXPECT_LT(result.final_loss, init_loss);
  EXPECT_TRUE(AllFinite(result.final_weights));
}

TEST(RuntimeClusterTest, SpeculationTriggersAbortsUnderRealThreads) {
  RuntimeConfig config;
  config.num_workers = 4;
  config.iterations_per_worker = 25;
  config.batch_size = 16;
  config.compute_chunks = 8;
  config.chunk_delay = std::chrono::microseconds(300);
  // Hair-trigger speculation: any push from others within 1 ms aborts.
  config.fixed_params.abort_time = Duration::Milliseconds(1.0);
  config.fixed_params.abort_rate = 1.0 / 8.0;
  RuntimeCluster cluster(TinyModel(2), std::make_shared<ConstantSchedule>(0.1),
                         config);
  const RuntimeResult result = cluster.Run();
  // Every worker still completes its quota of iterations.
  EXPECT_EQ(result.total_pushes, 100u);
  EXPECT_GT(result.scheduler_stats.notifies_received, 0u);
  // With four workers interleaving on real threads, at least some windows
  // must have seen a concurrent push and aborted.
  EXPECT_GT(result.total_aborts, 0u);
  // Every abort traces back to a re-sync, but a re-sync can arrive after the
  // worker already finished the targeted iteration ("too late", Sec. IV-A).
  EXPECT_LE(result.total_aborts, result.scheduler_stats.resyncs_issued);
}

TEST(RuntimeClusterTest, AdaptiveModeRuns) {
  RuntimeConfig config;
  config.num_workers = 3;
  config.iterations_per_worker = 20;
  config.batch_size = 8;
  config.adaptive = true;
  config.chunk_delay = std::chrono::microseconds(200);
  RuntimeCluster cluster(TinyModel(3), std::make_shared<ConstantSchedule>(0.1),
                         config);
  const RuntimeResult result = cluster.Run();
  EXPECT_EQ(result.total_pushes, 60u);
  EXPECT_GT(result.scheduler_stats.retunes, 0u);
}

TEST(RuntimeClusterTest, SparseModelWorks) {
  Rng rng(4);
  RatingsSpec spec;
  spec.num_users = 30;
  spec.num_items = 20;
  spec.num_ratings = 600;
  auto data = std::make_shared<RatingsDataset>(GenerateRatings(spec, rng));
  MatrixFactorizationConfig mf;
  mf.rank = 4;
  auto model = std::make_shared<MatrixFactorizationModel>(std::move(data), mf);

  RuntimeConfig config;
  config.num_workers = 2;
  config.iterations_per_worker = 30;
  config.batch_size = 32;
  config.fixed_params.abort_time = Duration::Milliseconds(0.5);
  config.fixed_params.abort_rate = 0.5;
  RuntimeCluster cluster(model, std::make_shared<ConstantSchedule>(0.02),
                         config);
  const RuntimeResult result = cluster.Run();
  EXPECT_EQ(result.total_pushes, 60u);
  EXPECT_TRUE(AllFinite(result.final_weights));
}

TEST(RuntimeClusterTest, TcpLoopbackTrainingCompletes) {
  RuntimeConfig config;
  config.num_workers = 3;
  config.iterations_per_worker = 10;
  config.batch_size = 16;
  config.transport = RuntimeTransport::kTcpLoopback;
  auto model = TinyModel(5);
  RuntimeCluster cluster(model, std::make_shared<ConstantSchedule>(0.2),
                         config);
  const RuntimeResult result = cluster.Run();
  EXPECT_EQ(result.total_pushes, 30u);
  EXPECT_TRUE(AllFinite(result.final_weights));
}

TEST(RuntimeClusterTest, TcpLoopbackEventLoopServerCompletes) {
  // Same loopback run behind the epoll server model: training must complete
  // with the identical push quota (behavioral equivalence of the A/B seam).
  RuntimeConfig config;
  config.num_workers = 3;
  config.iterations_per_worker = 10;
  config.batch_size = 16;
  config.transport = RuntimeTransport::kTcpLoopback;
  config.server_model = net::ServerModel::kEventLoop;
  auto model = TinyModel(5);
  RuntimeCluster cluster(model, std::make_shared<ConstantSchedule>(0.2),
                         config);
  const RuntimeResult result = cluster.Run();
  EXPECT_EQ(result.total_pushes, 30u);
  EXPECT_TRUE(AllFinite(result.final_weights));
}

TEST(RuntimeClusterTest, TcpLoopbackWithSpeculationCompletes) {
  RuntimeConfig config;
  config.num_workers = 3;
  config.iterations_per_worker = 12;
  config.batch_size = 16;
  config.compute_chunks = 4;
  config.chunk_delay = std::chrono::microseconds(200);
  config.transport = RuntimeTransport::kTcpLoopback;
  config.fixed_params.abort_time = Duration::Milliseconds(1.0);
  config.fixed_params.abort_rate = 1.0 / 8.0;
  RuntimeCluster cluster(TinyModel(6), std::make_shared<ConstantSchedule>(0.1),
                         config);
  const RuntimeResult result = cluster.Run();
  // Aborted iterations are retried, so the push quota still lands exactly.
  EXPECT_EQ(result.total_pushes, 36u);
  EXPECT_TRUE(AllFinite(result.final_weights));
}

TEST(RuntimeClusterTest, FinalEvalConfigControlsLossEvaluation) {
  RuntimeConfig config;
  config.num_workers = 2;
  config.iterations_per_worker = 5;
  config.batch_size = 8;
  auto model = TinyModel(7);
  const auto schedule = std::make_shared<ConstantSchedule>(0.2);

  config.final_eval = false;  // skipped entirely: loss stays at its default
  const RuntimeResult skipped =
      RuntimeCluster(model, schedule, config).Run();
  EXPECT_EQ(skipped.final_loss, 0.0);
  EXPECT_TRUE(AllFinite(skipped.final_weights));

  config.final_eval = true;
  config.final_eval_samples = 50;  // cheap subsample still evaluates
  const RuntimeResult cheap = RuntimeCluster(model, schedule, config).Run();
  EXPECT_GT(cheap.final_loss, 0.0);
}

TEST(RuntimeClusterTest, SspGatingBoundsRealThreadSkew) {
  // Gated runtime: one worker slowed 8x must drag the rest to within the
  // staleness bound. The gate's telemetry shows the fast workers actually
  // waited, and every quota still completes (liveness under real threads).
  RuntimeConfig config;
  config.num_workers = 3;
  config.iterations_per_worker = 20;
  config.batch_size = 16;
  config.compute_chunks = 4;
  config.chunk_delay = std::chrono::microseconds(300);
  config.consistency.scheme = RuntimeConsistency::kSsp;
  config.consistency.staleness = 2;
  config.faults.slowdowns.push_back(SlowdownWindow{
      0, SimTime::Zero(), SimTime::FromSeconds(3600.0), 8.0});
  RuntimeCluster cluster(TinyModel(8), std::make_shared<ConstantSchedule>(0.1),
                         config);
  const RuntimeResult result = cluster.Run();
  EXPECT_EQ(result.total_pushes, 60u);
  EXPECT_GT(result.consistency_blocks, 0u);
  EXPECT_GT(result.consistency_blocked_s, 0.0);
  EXPECT_EQ(result.final_staleness, 2u);
  EXPECT_TRUE(AllFinite(result.final_weights));
}

TEST(RuntimeClusterTest, DsspRetunesOnRealThreads) {
  RuntimeConfig config;
  config.num_workers = 3;
  config.iterations_per_worker = 25;
  config.batch_size = 16;
  config.compute_chunks = 4;
  config.chunk_delay = std::chrono::microseconds(300);
  config.consistency.scheme = RuntimeConsistency::kDssp;
  config.consistency.dssp.initial_staleness = 0;
  config.faults.slowdowns.push_back(SlowdownWindow{
      0, SimTime::Zero(), SimTime::FromSeconds(3600.0), 6.0});
  RuntimeCluster cluster(TinyModel(9), std::make_shared<ConstantSchedule>(0.1),
                         config);
  const RuntimeResult result = cluster.Run();
  EXPECT_EQ(result.total_pushes, 75u);
  // A 6x straggler against a floor-zero bound must provoke adjustments.
  EXPECT_GT(result.consistency_retunes, 0u);
  EXPECT_GT(result.final_staleness, 0u);
  EXPECT_TRUE(AllFinite(result.final_weights));
}

}  // namespace
}  // namespace specsync
