// Chaos tests for the threaded runtime: the fault-injecting mailbox contract,
// and full training runs under message loss, duplication, delay, slowdown, and
// worker crashes. These are the primary TSan/ASan targets — they exercise the
// scheduler thread, worker threads, and the fault plan concurrently.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "data/synthetic.h"
#include "models/softmax_regression.h"
#include "runtime/fault_mailbox.h"
#include "runtime/runtime_cluster.h"
#include "tensor/vector.h"

namespace specsync {
namespace {

// --- FaultMailbox --------------------------------------------------------------

TEST(FaultMailboxTest, NullPlanIsPlainFifo) {
  FaultMailbox<int> box;
  EXPECT_TRUE(box.Send(1));
  EXPECT_TRUE(box.Send(2));
  EXPECT_TRUE(box.Send(3));
  EXPECT_EQ(box.size(), 3u);
  EXPECT_EQ(box.Receive(), 1);
  EXPECT_EQ(box.Receive(), 2);
  EXPECT_EQ(box.Receive(), 3);
  EXPECT_EQ(box.TryReceive(), std::nullopt);
}

TEST(FaultMailboxTest, DropAllSwallowsSilently) {
  FaultPlanConfig config;
  config.control.drop_probability = 1.0;
  FaultPlan plan(config);
  FaultMailbox<int> box(&plan);
  // The sender cannot tell a swallowed message from a delivered one.
  EXPECT_TRUE(box.Send(1));
  EXPECT_TRUE(box.Send(2));
  EXPECT_TRUE(box.Send(3));
  EXPECT_EQ(box.size(), 0u);
  EXPECT_EQ(box.TryReceive(), std::nullopt);
  EXPECT_EQ(plan.stats().drops, 3u);
}

TEST(FaultMailboxTest, DuplicateAllDeliversTwiceInOrder) {
  FaultPlanConfig config;
  config.control.duplicate_probability = 1.0;
  FaultPlan plan(config);
  FaultMailbox<int> box(&plan);
  box.Send(1);
  box.Send(2);
  box.Send(3);
  EXPECT_EQ(box.size(), 6u);
  for (int expected : {1, 1, 2, 2, 3, 3}) {
    EXPECT_EQ(box.Receive(), expected);
  }
}

TEST(FaultMailboxTest, CloseMakesDelayedMessagesDrainImmediately) {
  FaultPlanConfig config;
  config.control.delay_probability = 1.0;
  config.control.delay_mean = Duration::Seconds(10.0);
  FaultPlan plan(config);
  FaultMailbox<int> box(&plan);
  for (int i = 0; i < 5; ++i) box.Send(i);
  EXPECT_EQ(box.size(), 5u);
  // Messages delayed by ~10 s are not yet visible...
  EXPECT_EQ(box.TryReceive(), std::nullopt);
  // ...but shutdown must drain injected latency, not wait it out.
  box.Close();
  int received = 0;
  while (box.Receive().has_value()) ++received;
  EXPECT_EQ(received, 5);
}

TEST(FaultMailboxTest, SendReliableBypassesFaults) {
  FaultPlanConfig config;
  config.control.drop_probability = 1.0;
  FaultPlan plan(config);
  FaultMailbox<int> box(&plan);
  box.Send(1);  // swallowed
  EXPECT_TRUE(box.SendReliable(42));
  EXPECT_EQ(box.size(), 1u);
  EXPECT_EQ(box.Receive(), 42);
}

TEST(FaultMailboxTest, ReceiveUntilHonorsDeadlineWithDelayedTraffic) {
  FaultPlanConfig config;
  config.control.delay_probability = 1.0;
  config.control.delay_mean = Duration::Seconds(30.0);
  FaultPlan plan(config);
  FaultMailbox<int> box(&plan);
  box.Send(7);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  EXPECT_EQ(box.ReceiveUntil(deadline), std::nullopt);
  EXPECT_FALSE(box.closed());
}

TEST(FaultMailboxTest, ConcurrentProducersUnderDuplication) {
  FaultPlanConfig config;
  config.control.duplicate_probability = 1.0;
  FaultPlan plan(config);
  FaultMailbox<int> box(&plan);
  constexpr int kPerProducer = 200;
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&box] {
        for (int i = 0; i < kPerProducer; ++i) box.Send(1);
      });
    }
  }
  int total = 0;
  while (auto v = box.TryReceive()) total += *v;
  EXPECT_EQ(total, 2 * 4 * kPerProducer);
}

// --- runtime under chaos -------------------------------------------------------

std::shared_ptr<const Model> TinyModel(std::uint64_t seed) {
  Rng rng(seed);
  ClassificationSpec spec;
  spec.num_examples = 300;
  spec.feature_dim = 8;
  spec.num_classes = 3;
  auto data = std::make_shared<ClassificationDataset>(
      GenerateClassification(spec, rng));
  return std::make_shared<SoftmaxRegressionModel>(std::move(data),
                                                  SoftmaxRegressionConfig{});
}

double InitLoss(const Model& model, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> params(model.param_dim());
  model.InitParams(params, rng);
  return model.FullLoss(params, 300);
}

TEST(RuntimeChaosTest, ZeroFaultConfigLeavesRuntimeUntouched) {
  RuntimeConfig config;
  config.num_workers = 3;
  config.iterations_per_worker = 15;
  config.batch_size = 16;
  config.fixed_params.abort_time = Duration::Milliseconds(1.0);
  config.fixed_params.abort_rate = 0.5;
  // Explicit but inert fault config: a present FaultPlanConfig with all-zero
  // probabilities and no events must not change anything.
  config.faults.control.drop_probability = 0.0;
  config.faults.seed = 42;
  RuntimeCluster cluster(TinyModel(1), std::make_shared<ConstantSchedule>(0.2),
                         config);
  const RuntimeResult result = cluster.Run();
  EXPECT_EQ(result.total_pushes, 45u);
  EXPECT_EQ(result.workers_killed, 0u);
  EXPECT_EQ(result.fault_stats.messages_seen, 0u);
  EXPECT_EQ(result.fault_stats.drops, 0u);
  EXPECT_EQ(result.fault_stats.crashes, 0u);
  EXPECT_EQ(result.scheduler_stats.worker_departures, 0u);
  EXPECT_TRUE(AllFinite(result.final_weights));
}

TEST(RuntimeChaosTest, LossyControlPlaneWithKilledWorkerStillConverges) {
  RuntimeConfig config;
  config.num_workers = 4;
  config.iterations_per_worker = 30;
  config.batch_size = 16;
  config.compute_chunks = 8;
  config.chunk_delay = std::chrono::microseconds(200);
  config.fixed_params.abort_time = Duration::Milliseconds(1.0);
  config.fixed_params.abort_rate = 1.0 / 8.0;
  config.faults.control.drop_probability = 0.10;
  config.faults.control.duplicate_probability = 0.15;
  config.faults.control.delay_probability = 0.2;
  config.faults.control.delay_mean = Duration::Milliseconds(1.0);
  // Worker 3 dies early and never comes back. Iterations take >= 1.6 ms of
  // chunk delay alone, so it cannot finish its quota before 20 ms.
  config.faults.crashes.push_back(
      CrashEvent{3, SimTime::FromSeconds(0.02), std::nullopt});
  auto model = TinyModel(2);
  const double init_loss = InitLoss(*model, config.seed);
  RuntimeCluster cluster(model, std::make_shared<ConstantSchedule>(0.2),
                         config);
  const RuntimeResult result = cluster.Run();

  // The run completed despite the dead worker: survivors did all their work.
  EXPECT_EQ(result.workers_killed, 1u);
  EXPECT_EQ(result.fault_stats.crashes, 1u);
  EXPECT_EQ(result.fault_stats.rejoins, 0u);
  EXPECT_GE(result.total_pushes, 90u);   // 3 survivors x 30 iterations
  EXPECT_LT(result.total_pushes, 120u);  // the dead worker's quota is unmet
  // Faults actually fired.
  EXPECT_GT(result.fault_stats.messages_seen, 0u);
  EXPECT_GT(result.fault_stats.drops, 0u);
  EXPECT_GT(result.fault_stats.duplicates, 0u);
  // The scheduler saw the departure, deduped replayed notifies, and kept
  // closing epochs without the dead worker.
  EXPECT_EQ(result.scheduler_stats.worker_departures, 1u);
  EXPECT_EQ(result.scheduler_stats.worker_rejoins, 0u);
  EXPECT_GT(result.scheduler_stats.duplicate_notifies, 0u);
  EXPECT_GE(result.scheduler_stats.lost_worker_epochs_unblocked, 1u);
  // Training still made progress.
  EXPECT_LT(result.final_loss, init_loss);
  EXPECT_TRUE(AllFinite(result.final_weights));
}

TEST(RuntimeChaosTest, CrashWithRejoinCompletesFullQuota) {
  RuntimeConfig config;
  config.num_workers = 3;
  config.iterations_per_worker = 20;
  config.batch_size = 16;
  config.compute_chunks = 4;
  config.chunk_delay = std::chrono::microseconds(200);
  config.fixed_params.abort_time = Duration::Milliseconds(1.0);
  config.fixed_params.abort_rate = 0.5;
  config.faults.crashes.push_back(CrashEvent{
      2, SimTime::FromSeconds(0.005), SimTime::FromSeconds(0.025)});
  RuntimeCluster cluster(TinyModel(3), std::make_shared<ConstantSchedule>(0.1),
                         config);
  const RuntimeResult result = cluster.Run();
  // The rejoined worker finishes its full quota after coming back.
  EXPECT_EQ(result.total_pushes, 60u);
  EXPECT_EQ(result.workers_killed, 0u);
  EXPECT_EQ(result.fault_stats.crashes, 1u);
  EXPECT_EQ(result.fault_stats.rejoins, 1u);
  EXPECT_EQ(result.scheduler_stats.worker_departures, 1u);
  EXPECT_EQ(result.scheduler_stats.worker_rejoins, 1u);
  EXPECT_TRUE(AllFinite(result.final_weights));
}

TEST(RuntimeChaosTest, SlowdownWindowStretchesVictimCompute) {
  // One worker runs 8x slower for the whole run; the wall-clock time is
  // dominated by the victim while the run still completes in full.
  RuntimeConfig config;
  config.num_workers = 3;
  config.iterations_per_worker = 12;
  config.batch_size = 16;
  config.compute_chunks = 4;
  config.chunk_delay = std::chrono::microseconds(500);
  config.faults.slowdowns.push_back(SlowdownWindow{
      0, SimTime::Zero(), SimTime::FromSeconds(3600.0), 8.0});
  RuntimeCluster cluster(TinyModel(4), std::make_shared<ConstantSchedule>(0.1),
                         config);
  const auto start = std::chrono::steady_clock::now();
  const RuntimeResult result = cluster.Run();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(result.total_pushes, 36u);
  // The slowed worker's 12 iterations sleep >= 12 * 4 * 4 ms = 192 ms; the
  // healthy workers alone would finish in ~24 ms of sleep time.
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            150);
}

}  // namespace
}  // namespace specsync
