// Regression tests for WallClock's SimTime <-> time_point conversion.
//
// The original ToTimePoint used duration_cast, which truncates toward zero:
// the returned time point could land fractionally BEFORE the SimTime it
// represents, so a timer sleeping until ToTimePoint(t) would wake with
// Now() < t still true and spin through its "deadline not reached" path.
// The fix is std::chrono::ceil; these tests pin the invariant down.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "runtime/wall_clock.h"

namespace specsync {
namespace {

using std::chrono::steady_clock;

// Seconds from the clock's origin to `tp`, in the same double arithmetic
// WallClock::Now() uses.
double SecondsFromStart(const WallClock& clock, steady_clock::time_point tp) {
  return std::chrono::duration<double>(tp - clock.start()).count();
}

TEST(WallClockTest, ToTimePointNeverLandsBeforeItsSimTime) {
  const WallClock clock(steady_clock::time_point{});
  // Fractional seconds chosen to not be representable exactly in the steady
  // clock's integer ticks — exactly the values truncation got wrong.
  for (const double s : {1e-9, 1.0 / 3.0, 0.1, 0.7, 1.0000000001,
                         123.456789, 1e-3 + 1e-10, 5000.123456789}) {
    const SimTime t = SimTime::FromSeconds(s);
    const double back = SecondsFromStart(clock, clock.ToTimePoint(t));
    // Once steady_clock reaches ToTimePoint(t), Now() >= t must hold — i.e.
    // the round trip may round up but never down past t.
    EXPECT_GE(back, s) << "s=" << s;
    // And it rounds up by at most one clock tick (no gross overshoot).
    const double tick =
        std::chrono::duration<double>(steady_clock::duration(1)).count();
    EXPECT_LE(back, s + tick) << "s=" << s;
  }
}

TEST(WallClockTest, ExactTickValuesRoundTripExactly) {
  const WallClock clock(steady_clock::time_point{});
  for (const double s : {0.0, 1.0, 0.5, 2.0, 0.001}) {
    const SimTime t = SimTime::FromSeconds(s);
    EXPECT_DOUBLE_EQ(SecondsFromStart(clock, clock.ToTimePoint(t)), s);
  }
}

TEST(WallClockTest, TimerFireBoundaryDoesNotSpin) {
  // The scheduler's timer loop pattern: sleep until ToTimePoint(deadline),
  // then test `deadline <= Now()`. With truncation this could be false on
  // wake (the spin); with ceil it must be true immediately.
  const WallClock clock;
  const SimTime deadline = clock.Now() + Duration::Milliseconds(5.0);
  std::this_thread::sleep_until(clock.ToTimePoint(deadline));
  EXPECT_LE(deadline, clock.Now());
}

TEST(WallClockTest, NowIsMonotoneNonNegative) {
  const WallClock clock;
  const SimTime a = clock.Now();
  const SimTime b = clock.Now();
  EXPECT_GE(a.seconds(), 0.0);
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace specsync
