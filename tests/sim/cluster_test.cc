// Integration tests for the full cluster simulation.
#include "sim/cluster.h"

#include <gtest/gtest.h>

#include <numeric>

#include "data/synthetic.h"
#include "models/softmax_regression.h"

namespace specsync {
namespace {

std::shared_ptr<const Model> TinyModel(std::uint64_t seed) {
  Rng rng(seed);
  ClassificationSpec spec;
  spec.num_examples = 400;
  spec.feature_dim = 8;
  spec.num_classes = 3;
  auto data = std::make_shared<ClassificationDataset>(
      GenerateClassification(spec, rng));
  return std::make_shared<SoftmaxRegressionModel>(std::move(data),
                                                  SoftmaxRegressionConfig{});
}

ClusterSimConfig BaseConfig() {
  ClusterSimConfig config;
  config.num_workers = 4;
  config.num_servers = 2;
  config.batch_size = 16;
  config.eval_interval = Duration::Seconds(5.0);
  config.eval_subsample = 200;
  config.max_time = SimTime::FromSeconds(120.0);
  config.seed = 99;
  return config;
}

std::unique_ptr<SpeedModel> Speed() {
  return std::make_unique<HomogeneousSpeedModel>(Duration::Seconds(1.0), 0.1);
}

SimResult RunOnce(const ClusterSimConfig& config, std::uint64_t seed = 1) {
  ClusterSim sim(TinyModel(seed), std::make_shared<ConstantSchedule>(0.2),
                 Speed(), config);
  return sim.Run();
}

TEST(ClusterSimTest, TrainingReducesLoss) {
  const SimResult result = RunOnce(BaseConfig());
  ASSERT_GE(result.trace.losses().size(), 2u);
  const double first = result.trace.losses().front().loss;
  const double last = result.trace.losses().back().loss;
  EXPECT_LT(last, first);
  EXPECT_GT(result.total_pushes, 100u);
  EXPECT_TRUE(AllFinite(result.final_weights));
}

TEST(ClusterSimTest, DeterministicForFixedSeed) {
  const SimResult a = RunOnce(BaseConfig());
  const SimResult b = RunOnce(BaseConfig());
  EXPECT_EQ(a.total_pushes, b.total_pushes);
  EXPECT_DOUBLE_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.final_weights, b.final_weights);
  ASSERT_EQ(a.trace.pushes().size(), b.trace.pushes().size());
  for (std::size_t i = 0; i < a.trace.pushes().size(); ++i) {
    EXPECT_EQ(a.trace.pushes()[i].time, b.trace.pushes()[i].time);
    EXPECT_EQ(a.trace.pushes()[i].worker, b.trace.pushes()[i].worker);
  }
}

TEST(ClusterSimTest, DifferentSeedsDiffer) {
  ClusterSimConfig config = BaseConfig();
  const SimResult a = RunOnce(config);
  config.seed = 100;
  const SimResult b = RunOnce(config);
  EXPECT_NE(a.final_loss, b.final_loss);
}

TEST(ClusterSimTest, BspNeverExceedsStalenessZero) {
  ClusterSimConfig config = BaseConfig();
  config.scheme = SchemeSpec::Bsp();
  const SimResult result = RunOnce(config);
  // Under BSP a worker's snapshot can miss at most the other m-1 workers'
  // pushes of the same round.
  for (const PushEvent& push : result.trace.pushes()) {
    EXPECT_LE(push.missed_updates, config.num_workers - 1);
  }
}

TEST(ClusterSimTest, SspBoundsProgressSkew) {
  ClusterSimConfig config = BaseConfig();
  config.scheme = SchemeSpec::Ssp(2);
  const SimResult result = RunOnce(config);
  // Reconstruct per-worker progress over time from pushes; the running skew
  // (max - min completed) must never exceed s + 1.
  std::vector<std::uint64_t> completed(config.num_workers, 0);
  for (const PushEvent& push : result.trace.pushes()) {
    ++completed[push.worker];
    const auto [min_it, max_it] =
        std::minmax_element(completed.begin(), completed.end());
    EXPECT_LE(*max_it - *min_it, 3u);
  }
}

TEST(ClusterSimTest, AspRunsMorePushesThanBsp) {
  ClusterSimConfig config = BaseConfig();
  config.scheme = SchemeSpec::Original();
  const SimResult asp = RunOnce(config);
  config.scheme = SchemeSpec::Bsp();
  const SimResult bsp = RunOnce(config);
  EXPECT_GT(asp.total_pushes, bsp.total_pushes);
}

TEST(ClusterSimTest, SpeculationAbortsAndRestarts) {
  ClusterSimConfig config = BaseConfig();
  SpeculationParams params;
  params.abort_time = Duration::Seconds(0.3);
  params.abort_rate = 0.25;  // 1 push from others triggers
  config.scheme = SchemeSpec::Cherrypick(params);
  const SimResult result = RunOnce(config);
  EXPECT_GT(result.total_aborts, 0u);
  EXPECT_EQ(result.total_aborts, result.scheduler_stats.resyncs_issued);
  EXPECT_GT(result.scheduler_stats.checks_performed, 0u);
  // Wasted compute per abort is bounded by the abort decision + message time,
  // which is well under one iteration.
  for (const AbortEvent& abort : result.trace.aborts()) {
    EXPECT_LT(abort.wasted_compute.seconds(), 1.5);
    EXPECT_GT(abort.wasted_compute.seconds(), 0.0);
  }
}

TEST(ClusterSimTest, AdaptiveTunerEngagesAfterFirstEpoch) {
  ClusterSimConfig config = BaseConfig();
  config.scheme = SchemeSpec::Adaptive();
  const SimResult result = RunOnce(config);
  EXPECT_GT(result.scheduler_stats.retunes, 1u);
  EXPECT_GT(result.scheduler_stats.notifies_received, 100u);
}

TEST(ClusterSimTest, SpeculationReducesMeanStaleness) {
  // With bursty deliveries (stalls), SpecSync must reduce the mean number of
  // missed updates per push relative to plain ASP.
  ClusterSimConfig config = BaseConfig();
  config.num_workers = 8;
  config.max_time = SimTime::FromSeconds(300.0);
  config.stalls.enabled = true;
  config.stalls.mean_gap = Duration::Seconds(3.0);
  config.stalls.mean_duration = Duration::Seconds(0.5);

  auto mean_staleness = [](const SimResult& result) {
    double total = 0.0;
    for (const PushEvent& push : result.trace.pushes()) {
      total += static_cast<double>(push.missed_updates);
    }
    return total / static_cast<double>(result.trace.pushes().size());
  };

  config.scheme = SchemeSpec::Original();
  const double asp = mean_staleness(RunOnce(config));
  SpeculationParams params;
  params.abort_time = Duration::Seconds(0.4);
  params.abort_rate = 0.25;
  config.scheme = SchemeSpec::Cherrypick(params);
  const double spec = mean_staleness(RunOnce(config));
  EXPECT_LT(spec, asp);
}

TEST(ClusterSimTest, ConvergenceDetectionStopsEarly) {
  ClusterSimConfig config = BaseConfig();
  config.loss_target = 10.0;  // trivially met from the first evaluation
  config.convergence_patience = 3;
  const SimResult result = RunOnce(config);
  ASSERT_TRUE(result.convergence_time.has_value());
  EXPECT_LT(result.end_time, config.max_time);
  // Convergence time is the start of the streak = first evaluation.
  EXPECT_DOUBLE_EQ(result.convergence_time->seconds(), 5.0);
}

TEST(ClusterSimTest, MaxPushesCapStops) {
  ClusterSimConfig config = BaseConfig();
  config.max_pushes = 40;
  const SimResult result = RunOnce(config);
  EXPECT_EQ(result.total_pushes, 40u);
}

TEST(ClusterSimTest, TransferAccountingConsistency) {
  // A realistically sized model: control messages must be a negligible share
  // (paper Fig. 13); with a toy 27-parameter model they would not be.
  Rng rng(31);
  ClassificationSpec spec;
  spec.num_examples = 400;
  spec.feature_dim = 128;
  spec.num_classes = 10;
  auto data = std::make_shared<ClassificationDataset>(
      GenerateClassification(spec, rng));
  auto model = std::make_shared<SoftmaxRegressionModel>(
      std::move(data), SoftmaxRegressionConfig{});
  ClusterSimConfig config = BaseConfig();
  config.scheme = SchemeSpec::Adaptive();
  ClusterSim sim(model, std::make_shared<ConstantSchedule>(0.2), Speed(),
                 config);
  const SimResult result = sim.Run();
  const auto& transfers = result.transfers;
  // Pulls: every pull moves the full dense model.
  const std::uint64_t pull_count = result.trace.pulls().size();
  EXPECT_EQ(transfers.bytes(TransferCategory::kPullParams),
            pull_count * model->param_dim() * sizeof(double));
  // Notify bytes: one control message per push.
  EXPECT_EQ(transfers.bytes(TransferCategory::kNotify),
            result.total_pushes * kControlMessageBytes);
  // Re-sync bytes: one control message per abort.
  EXPECT_EQ(transfers.bytes(TransferCategory::kReSync),
            result.total_aborts * kControlMessageBytes);
  // Control traffic is a negligible share (paper Fig. 13).
  EXPECT_LT(transfers.fraction(TransferCategory::kNotify) +
                transfers.fraction(TransferCategory::kReSync),
            0.01);
}

TEST(ClusterSimTest, NaiveWaitingSlowsPushRate) {
  ClusterSimConfig config = BaseConfig();
  config.scheme = SchemeSpec::Original();
  const SimResult plain = RunOnce(config);
  config.scheme = SchemeSpec::NaiveWaiting(Duration::Seconds(0.5));
  const SimResult naive = RunOnce(config);
  // Delaying every pull by half an iteration cuts throughput by ~1/3.
  EXPECT_LT(naive.total_pushes, plain.total_pushes);
  EXPECT_GT(naive.total_pushes, plain.total_pushes / 2);
}

TEST(ClusterSimTest, SchemeDisplayNames) {
  EXPECT_EQ(SchemeSpec::Original().DisplayName(), "ASP");
  EXPECT_EQ(SchemeSpec::Bsp().DisplayName(), "BSP");
  EXPECT_EQ(SchemeSpec::Ssp(3).DisplayName(), "SSP(s=3)");
  EXPECT_EQ(SchemeSpec::Adaptive().DisplayName(), "ASP+SpecSync-Adaptive");
  SpeculationParams p;
  p.abort_time = Duration::Seconds(1.0);
  EXPECT_EQ(SchemeSpec::Cherrypick(p).DisplayName(),
            "ASP+SpecSync-Cherrypick");
  EXPECT_EQ(SchemeSpec::NaiveWaiting(Duration::Seconds(2.0)).DisplayName(),
            "ASP+NaiveWait(2s)");
}

}  // namespace
}  // namespace specsync
