// Property-style invariants checked across every synchronization scheme:
// whatever the scheme, the PS protocol's bookkeeping must stay coherent.
#include <gtest/gtest.h>

#include <map>

#include "data/synthetic.h"
#include "models/softmax_regression.h"
#include "sim/cluster.h"

namespace specsync {
namespace {

std::shared_ptr<const Model> SmallModel() {
  Rng rng(5);
  ClassificationSpec spec;
  spec.num_examples = 300;
  spec.feature_dim = 8;
  spec.num_classes = 3;
  auto data = std::make_shared<ClassificationDataset>(
      GenerateClassification(spec, rng));
  return std::make_shared<SoftmaxRegressionModel>(std::move(data),
                                                  SoftmaxRegressionConfig{});
}

struct SchemeCase {
  std::string name;
  SchemeSpec scheme;
  bool stalls = false;
};

std::vector<SchemeCase> AllSchemes() {
  SpeculationParams cherry;
  cherry.abort_time = Duration::Seconds(0.3);
  cherry.abort_rate = 0.25;
  return {
      {"asp", SchemeSpec::Original(), false},
      {"asp_stalls", SchemeSpec::Original(), true},
      {"bsp", SchemeSpec::Bsp(), false},
      {"ssp1", SchemeSpec::Ssp(1), false},
      {"ssp5", SchemeSpec::Ssp(5), true},
      {"naive", SchemeSpec::NaiveWaiting(Duration::Seconds(0.4)), false},
      {"cherry", SchemeSpec::Cherrypick(cherry), true},
      {"adaptive", SchemeSpec::Adaptive(), true},
  };
}

class SchemeInvariantsTest : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(SchemeInvariantsTest, TraceInvariantsHold) {
  const SchemeCase& scheme_case = GetParam();
  ClusterSimConfig config;
  config.num_workers = 6;
  config.num_servers = 3;
  config.batch_size = 8;
  config.scheme = scheme_case.scheme;
  config.eval_interval = Duration::Seconds(10.0);
  config.eval_subsample = 100;
  config.max_time = SimTime::FromSeconds(150.0);
  config.seed = 77;
  if (scheme_case.stalls) {
    config.stalls.enabled = true;
    config.stalls.mean_gap = Duration::Seconds(4.0);
    config.stalls.mean_duration = Duration::Seconds(0.6);
  }
  auto speed = std::make_unique<HomogeneousSpeedModel>(Duration::Seconds(1.0),
                                                       0.15);
  ClusterSim sim(SmallModel(), std::make_shared<ConstantSchedule>(0.1),
                 std::move(speed), config);
  const SimResult result = sim.Run();

  ASSERT_GT(result.total_pushes, 0u);

  // 1. Push times are globally non-decreasing; store versions are exactly
  //    1, 2, 3, ... in arrival order.
  SimTime previous = SimTime::Zero();
  std::uint64_t expected_version = 0;
  for (const PushEvent& push : result.trace.pushes()) {
    EXPECT_GE(push.time, previous);
    previous = push.time;
    EXPECT_EQ(push.version, ++expected_version);
  }

  // 2. Per-worker iteration ids are 0, 1, 2, ... in order.
  std::map<WorkerId, IterationId> next_iteration;
  for (const PushEvent& push : result.trace.pushes()) {
    EXPECT_EQ(push.iteration, next_iteration[push.worker]);
    next_iteration[push.worker] = push.iteration + 1;
  }

  // 3. Every iteration begins with a pull: a worker's k-th push is preceded
  //    by at least k pulls (aborted iterations add extra pulls).
  for (WorkerId w = 0; w < config.num_workers; ++w) {
    EXPECT_GE(result.trace.PullTimes(w).size(),
              result.trace.PushTimes(w).size());
  }

  // 4. missed_updates is bounded by the push's own version minus one (it
  //    cannot miss more updates than have ever been applied).
  for (const PushEvent& push : result.trace.pushes()) {
    EXPECT_LT(push.missed_updates, push.version);
  }

  // 5. Aborts only happen under speculation, and wasted compute is positive
  //    and below one (jittered) iteration.
  if (scheme_case.scheme.speculation == SpeculationMode::kNone) {
    EXPECT_EQ(result.total_aborts, 0u);
  }
  for (const AbortEvent& abort : result.trace.aborts()) {
    EXPECT_GT(abort.wasted_compute, Duration::Zero());
    EXPECT_LT(abort.wasted_compute, Duration::Seconds(3.0));
  }

  // 6. Transfer ledger matches the trace: one full-model pull per PullEvent,
  //    one gradient push per PushEvent.
  EXPECT_EQ(result.transfers.bytes(TransferCategory::kPullParams),
            result.trace.pulls().size() * SmallModel()->param_dim() *
                sizeof(double));
  EXPECT_EQ(result.transfers.bytes(TransferCategory::kPushGrads),
            result.total_pushes * SmallModel()->param_dim() * sizeof(double));

  // 7. Loss samples are finite and timestamps increase.
  SimTime last_eval = SimTime::Zero();
  for (const LossSample& sample : result.trace.losses()) {
    EXPECT_TRUE(std::isfinite(sample.loss));
    EXPECT_GE(sample.time, last_eval);
    last_eval = sample.time;
  }

  // 8. Final weights are finite (no scheme may blow up at this step size).
  EXPECT_TRUE(AllFinite(result.final_weights));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeInvariantsTest, ::testing::ValuesIn(AllSchemes()),
    [](const ::testing::TestParamInfo<SchemeCase>& info) {
      return info.param.name;
    });

// The conservation law behind DESIGN.md Sec. 6: under ASP with full duty
// cycle and no delivery batching, mean version lag sits near m-1.
TEST(StalenessConservationTest, AspMeanLagNearMMinus1) {
  ClusterSimConfig config;
  config.num_workers = 8;
  config.num_servers = 2;
  config.batch_size = 8;
  config.eval_interval = Duration::Seconds(50.0);
  config.eval_subsample = 50;
  config.max_time = SimTime::FromSeconds(400.0);
  config.seed = 13;
  auto speed = std::make_unique<HomogeneousSpeedModel>(Duration::Seconds(1.0),
                                                       0.1);
  ClusterSim sim(SmallModel(), std::make_shared<ConstantSchedule>(0.05),
                 std::move(speed), config);
  const SimResult result = sim.Run();
  double total = 0.0;
  for (const PushEvent& push : result.trace.pushes()) {
    total += static_cast<double>(push.missed_updates);
  }
  const double mean = total / static_cast<double>(result.total_pushes);
  // Network time creates a little idle per iteration, so slightly below 7.
  EXPECT_GT(mean, 5.5);
  EXPECT_LT(mean, 7.5);
}

}  // namespace
}  // namespace specsync
