// Sim-level behavior of the per-shard and dynamic consistency schemes: the
// gating actually constrains the event schedule, the new stats surface in
// SimResult, DSSP retunes land in the audit log, and attaching observability
// never perturbs the trace (the record-only contract extended to the new
// controllers).
#include <algorithm>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "models/softmax_regression.h"
#include "obs/obs.h"
#include "sim/cluster.h"
#include "trace/trace.h"

namespace specsync {
namespace {

std::shared_ptr<const Model> TinyModel(std::uint64_t seed) {
  Rng rng(seed);
  ClassificationSpec spec;
  spec.num_examples = 400;
  spec.feature_dim = 8;
  spec.num_classes = 3;
  auto data = std::make_shared<ClassificationDataset>(
      GenerateClassification(spec, rng));
  return std::make_shared<SoftmaxRegressionModel>(std::move(data),
                                                  SoftmaxRegressionConfig{});
}

ClusterSimConfig BaseConfig() {
  ClusterSimConfig config;
  config.num_workers = 4;
  config.num_servers = 2;
  config.batch_size = 16;
  config.eval_interval = Duration::Seconds(5.0);
  config.eval_subsample = 200;
  config.max_time = SimTime::FromSeconds(120.0);
  config.seed = 99;
  return config;
}

// One worker 3x slower than the rest: the straggler regime the dynamic
// bound is tuned for.
std::unique_ptr<SpeedModel> StragglerSpeed(std::size_t num_workers) {
  std::vector<double> multipliers(num_workers, 1.0);
  multipliers[0] = 3.0;
  return std::make_unique<HeterogeneousSpeedModel>(
      Duration::Seconds(1.0), std::move(multipliers), 0.1);
}

SimResult RunOnce(const ClusterSimConfig& config, bool straggler = false,
                  std::uint64_t seed = 1) {
  std::unique_ptr<SpeedModel> speed;
  if (straggler) {
    speed = StragglerSpeed(config.num_workers);
  } else {
    speed = std::make_unique<HomogeneousSpeedModel>(Duration::Seconds(1.0),
                                                    0.1);
  }
  ClusterSim sim(TinyModel(seed), std::make_shared<ConstantSchedule>(0.2),
                 std::move(speed), config);
  return sim.Run();
}

TEST(ConsistencySimTest, PerShardSspBoundsProgressSkew) {
  ClusterSimConfig config = BaseConfig();
  config.scheme = SchemeSpec::PerShardSsp(2);
  const SimResult result = RunOnce(config);
  // Dense softmax gradients touch every shard, so learned write sets are
  // global and per-shard SSP enforces the global skew bound: running
  // completed-count spread never exceeds s + 1.
  std::vector<std::uint64_t> completed(config.num_workers, 0);
  for (const PushEvent& push : result.trace.pushes()) {
    ++completed[push.worker];
    const auto [min_it, max_it] =
        std::minmax_element(completed.begin(), completed.end());
    EXPECT_LE(*max_it - *min_it, 3u);
  }
  EXPECT_GT(result.total_pushes, 100u);
}

TEST(ConsistencySimTest, PerShardGatingBlocksUnderStraggler) {
  ClusterSimConfig config = BaseConfig();
  config.scheme = SchemeSpec::PerShardSsp(1);
  const SimResult result = RunOnce(config, /*straggler=*/true);
  EXPECT_GT(result.consistency.blocks, 0u);
  EXPECT_GT(result.consistency.blocked_seconds, 0.0);
  EXPECT_EQ(result.consistency.final_staleness, 1u);
  EXPECT_EQ(result.consistency.retunes, 0u);  // static bound
}

TEST(ConsistencySimTest, AspReportsNoConsistencyActivity) {
  const SimResult result = RunOnce(BaseConfig());
  EXPECT_EQ(result.consistency.blocks, 0u);
  EXPECT_EQ(result.consistency.blocked_seconds, 0.0);
  EXPECT_EQ(result.consistency.retunes, 0u);
}

TEST(ConsistencySimTest, PerShardSspIsDeterministic) {
  ClusterSimConfig config = BaseConfig();
  config.scheme = SchemeSpec::PerShardSsp(1);
  const SimResult a = RunOnce(config, /*straggler=*/true);
  const SimResult b = RunOnce(config, /*straggler=*/true);
  EXPECT_EQ(TraceDigest(a.trace), TraceDigest(b.trace));
  EXPECT_EQ(a.consistency.blocks, b.consistency.blocks);
  EXPECT_DOUBLE_EQ(a.consistency.blocked_seconds,
                   b.consistency.blocked_seconds);
}

TEST(ConsistencySimTest, DynamicSspRetunesUnderStraggler) {
  ClusterSimConfig config = BaseConfig();
  config.max_time = SimTime::FromSeconds(300.0);
  DynamicSspConfig dssp;
  dssp.initial_staleness = 0;  // forced to adapt: BSP-strict start
  config.scheme = SchemeSpec::DynamicSsp(dssp);
  const SimResult result = RunOnce(config, /*straggler=*/true);
  // A 3x straggler against a bound of 0 must provoke retunes, and the bound
  // in force at the end should have moved off the floor.
  EXPECT_GT(result.consistency.retunes, 0u);
  EXPECT_GT(result.consistency.final_staleness, 0u);
  EXPECT_LE(result.consistency.final_staleness, dssp.max_staleness);
}

TEST(ConsistencySimTest, DynamicSspRetunesAreAudited) {
  ClusterSimConfig config = BaseConfig();
  config.max_time = SimTime::FromSeconds(300.0);
  DynamicSspConfig dssp;
  dssp.initial_staleness = 0;
  config.scheme = SchemeSpec::DynamicSsp(dssp);
  obs::ObsContext ctx;
  config.obs = &ctx;
  const SimResult result = RunOnce(config, /*straggler=*/true);
  ASSERT_GT(result.consistency.retunes, 0u);
  // Every bound adjustment leaves exactly one staleness-kind retune record.
  std::size_t staleness_records = 0;
  for (const obs::RetuneRecord& record : ctx.audit.retunes()) {
    if (record.kind != obs::RetuneKind::kStaleness) continue;
    ++staleness_records;
    EXPECT_GT(record.straggler_ratio, 1.0);
    EXPECT_GT(record.epoch_pushes, 0u);
  }
  EXPECT_EQ(staleness_records, result.consistency.retunes);
  EXPECT_EQ(ctx.metrics.gauge("sim.consistency_final_staleness").value(),
            static_cast<double>(result.consistency.final_staleness));
}

TEST(ConsistencySimTest, ObservabilityDoesNotPerturbGatedRuns) {
  for (const SchemeSpec& scheme :
       {SchemeSpec::PerShardSsp(1), SchemeSpec::DynamicSsp()}) {
    ClusterSimConfig config = BaseConfig();
    config.scheme = scheme;
    const SimResult plain = RunOnce(config, /*straggler=*/true);
    obs::ObsContext ctx;
    config.obs = &ctx;
    const SimResult observed = RunOnce(config, /*straggler=*/true);
    EXPECT_EQ(TraceDigest(plain.trace), TraceDigest(observed.trace))
        << scheme.DisplayName();
    EXPECT_EQ(plain.consistency.blocks, observed.consistency.blocks);
    EXPECT_EQ(plain.consistency.retunes, observed.consistency.retunes);
  }
}

TEST(ConsistencySimTest, DynamicBoundRelievesStragglerStalls) {
  // The adaptive bound's reason to exist: under a straggler, static SSP(0)
  // blocks the fast workers constantly; DSSP starting from the same bound
  // widens it and spends less virtual time gated.
  ClusterSimConfig config = BaseConfig();
  config.max_time = SimTime::FromSeconds(300.0);
  config.scheme = SchemeSpec::Ssp(0);
  const SimResult ssp = RunOnce(config, /*straggler=*/true);
  DynamicSspConfig dssp;
  dssp.initial_staleness = 0;
  config.scheme = SchemeSpec::DynamicSsp(dssp);
  const SimResult dynamic = RunOnce(config, /*straggler=*/true);
  EXPECT_LT(dynamic.consistency.blocked_seconds,
            ssp.consistency.blocked_seconds);
  EXPECT_GT(dynamic.total_pushes, ssp.total_pushes);
}

TEST(ConsistencySimTest, CrashExcusesGatedPeersUnderPerShardSsp) {
  // Worker 2 crashes for a window mid-run. Under PSSP the remaining workers
  // must keep making progress while it is down (the sim excuses the corpse
  // via OnWorkerDown), and the run must not wedge after it rejoins.
  ClusterSimConfig config = BaseConfig();
  config.scheme = SchemeSpec::PerShardSsp(1);
  config.max_time = SimTime::FromSeconds(200.0);
  CrashEvent crash;
  crash.worker = 2;
  crash.at = SimTime::FromSeconds(40.0);
  crash.rejoin = SimTime::FromSeconds(120.0);
  config.faults.crashes.push_back(crash);
  const SimResult result = RunOnce(config, /*straggler=*/false);
  // Pushes continue during the outage window.
  std::uint64_t pushes_in_window = 0;
  for (const PushEvent& push : result.trace.pushes()) {
    if (push.time > SimTime::FromSeconds(50.0) &&
        push.time < SimTime::FromSeconds(110.0)) {
      ++pushes_in_window;
    }
  }
  EXPECT_GT(pushes_in_window, 10u);
  // And the rejoined worker catches up: everyone keeps pushing afterwards.
  std::vector<std::uint64_t> tail_pushes(config.num_workers, 0);
  for (const PushEvent& push : result.trace.pushes()) {
    if (push.time > SimTime::FromSeconds(130.0)) ++tail_pushes[push.worker];
  }
  for (WorkerId w = 0; w < config.num_workers; ++w) {
    EXPECT_GT(tail_pushes[w], 0u) << "worker " << w;
  }
}

TEST(ConsistencySimTest, SchemeDisplayNames) {
  EXPECT_EQ(SchemeSpec::PerShardSsp(2).DisplayName(), "PSSP(s=2)");
  EXPECT_EQ(SchemeSpec::DynamicSsp().DisplayName(), "DSSP(s0=3)");
}

}  // namespace
}  // namespace specsync
