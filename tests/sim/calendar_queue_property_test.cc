// Property-based event-queue equivalence harness (DESIGN.md §12).
//
// Each trial generates a random event-stream schedule — pushes with delta
// mixtures that force duplicate timestamps, zero-delay self-inserts (a push
// landing exactly at the last popped time), sub-bucket-width clusters, and
// far-future outliers (resize + direct-search paths) — interleaved with pops
// and cancels (including stale cancels of already-popped handles). The
// schedule replays against the queue under test and an independently written
// reference model (a flat vector popped by min-(time, sequence) scan, no
// shared code), and every observable must match exactly:
//
//  * pop order      — each pop returns the same (time, id) pair;
//  * peek           — PeekTime before each pop equals the reference min;
//  * cancel result  — Cancel(id) removed an event iff the reference still
//                     held it (stale/duplicate cancels are no-ops on both).
//
// On failure the harness shrinks the op list to a 1-minimal counterexample
// (greedy ddmin, same scheme as consistency_property_test) and prints it. A
// deliberately planted tie-break violation (LIFO among equal times) must be
// caught and shrunk to a hand-checkable handful of ops — the harness-teeth
// check.
//
// Schedules are seeded; set SPECSYNC_PROPERTY_SEED to reproduce or explore.

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/sim_time.h"
#include "sim/calendar_queue.h"
#include "sim/event_fn.h"

namespace specsync {
namespace {

std::uint64_t BaseSeed() {
  if (const char* env = std::getenv("SPECSYNC_PROPERTY_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260808;
}

// --- schedules ---------------------------------------------------------------

enum class OpKind { kPush, kPop, kCancel };

// One schedule event. kPush schedules event `id` at (last popped time +
// delta); kPop pops the minimum if any; kCancel cancels push `target` — a
// no-op (checked to agree on both sides) when that push never ran, already
// popped, or was already cancelled. Every op is executable after arbitrary
// deletions, which keeps shrinking well-defined.
struct Op {
  OpKind kind = OpKind::kPush;
  int id = 0;        // kPush: unique event id (its index in the op list)
  double delta = 0;  // kPush: seconds after the queue's current floor
  int target = 0;    // kCancel: id of the push to cancel
};

struct Schedule {
  std::vector<Op> ops;
};

Schedule GenerateSchedule(std::uint64_t seed) {
  Rng rng(seed);
  Schedule s;
  const std::size_t len = 10 + rng.Index(111);  // 10..120 ops
  s.ops.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    Op op;
    const std::size_t roll = rng.Index(100);
    if (roll < 55) {
      op.kind = OpKind::kPush;
      op.id = static_cast<int>(i);
      // Delta mixture: exact duplicates of the floor (zero-delay
      // self-inserts), exact duplicates of each other (integer grid),
      // sub-width fractions, and far-future outliers that leave the
      // calendar's current year.
      const std::size_t shape = rng.Index(10);
      if (shape < 2) {
        op.delta = 0.0;
      } else if (shape < 5) {
        op.delta = static_cast<double>(rng.Index(5));
      } else if (shape < 8) {
        op.delta = rng.Uniform(0.0, 2.0);
      } else if (shape < 9) {
        op.delta = rng.Uniform(100.0, 1100.0);
      } else {
        op.delta = rng.Uniform(1e6, 1e9);
      }
    } else if (roll < 85) {
      op.kind = OpKind::kPop;
    } else {
      op.kind = OpKind::kCancel;
      op.target = static_cast<int>(rng.Index(len));
    }
    s.ops.push_back(op);
  }
  return s;
}

std::string FormatOps(const Schedule& s) {
  std::ostringstream out;
  out << "ops:";
  for (const Op& op : s.ops) {
    out << ' ';
    switch (op.kind) {
      case OpKind::kPush:
        out << "P" << op.id << "@+" << op.delta;
        break;
      case OpKind::kPop:
        out << "pop";
        break;
      case OpKind::kCancel:
        out << "X" << op.target;
        break;
    }
  }
  return out.str();
}

// --- reference model ---------------------------------------------------------

// Independent implementation of the documented queue semantics: a flat list
// popped by linear min-(time, sequence) scan. Shares no code with the queues
// it judges.
struct RefQueue {
  struct Entry {
    double time = 0.0;
    std::uint64_t sequence = 0;
    int id = 0;
  };
  std::vector<Entry> entries;
  std::uint64_t next_sequence = 0;

  void Push(double time, int id) {
    entries.push_back(Entry{time, next_sequence++, id});
  }
  bool Cancel(int id) {
    for (auto it = entries.begin(); it != entries.end(); ++it) {
      if (it->id == id) {
        entries.erase(it);
        return true;
      }
    }
    return false;
  }
  std::optional<Entry> Pop() {
    if (entries.empty()) return std::nullopt;
    auto min = entries.begin();
    for (auto it = entries.begin(); it != entries.end(); ++it) {
      if (it->time < min->time ||
          (it->time == min->time && it->sequence < min->sequence)) {
        min = it;
      }
    }
    Entry out = *min;
    entries.erase(min);
    return out;
  }
};

// --- subjects ----------------------------------------------------------------

// The queue under test, type-erased so the harness can drive the calendar
// queue, the pooled heap, and planted-bug impostors identically.
struct Subject {
  std::function<void(double time, int id)> push;
  std::function<bool(int id)> cancel;  // false = nothing removed
  // Returns (PeekTime, popped id); checks internally that peek matches pop.
  std::function<std::optional<std::pair<double, int>>()> pop;
  std::function<std::size_t()> size;
};

using SubjectFactory = std::function<Subject()>;

Subject CalendarSubject() {
  auto queue = std::make_shared<CalendarQueue<int>>();
  auto handles = std::make_shared<std::map<int, CalendarQueue<int>::Handle>>();
  return {
      [queue, handles](double time, int id) {
        (*handles)[id] = queue->Push(SimTime::FromSeconds(time), id);
      },
      [queue, handles](int id) {
        auto it = handles->find(id);
        return it != handles->end() && queue->Cancel(it->second);
      },
      [queue]() -> std::optional<std::pair<double, int>> {
        if (queue->empty()) return std::nullopt;
        const double peek = queue->PeekTime().seconds();
        SimTime popped_at;
        const int id = queue->PopMin(&popped_at);
        EXPECT_EQ(peek, popped_at.seconds());
        return std::make_pair(popped_at.seconds(), id);
      },
      [queue] { return queue->size(); },
  };
}

Subject PooledHeapSubject() {
  auto queue = std::make_shared<BinaryHeapQueue<int>>();
  return {
      [queue](double time, int id) {
        queue->Push(SimTime::FromSeconds(time), id);
      },
      [](int) { return false; },  // the heap engine does not support cancel
      [queue]() -> std::optional<std::pair<double, int>> {
        if (queue->empty()) return std::nullopt;
        const double peek = queue->PeekTime().seconds();
        SimTime popped_at;
        const int id = queue->PopMin(&popped_at);
        EXPECT_EQ(peek, popped_at.seconds());
        return std::make_pair(popped_at.seconds(), id);
      },
      [queue] { return queue->size(); },
  };
}

// The planted bug: correct times, but LIFO among equal times — the tie-break
// violation the (time, sequence) contract exists to forbid. The harness must
// catch it and shrink the witness to a few ops.
Subject LifoTieBreakSubject() {
  auto queue = std::make_shared<RefQueue>();
  return {
      [queue](double time, int id) { queue->Push(time, id); },
      [queue](int id) { return queue->Cancel(id); },
      [queue]() -> std::optional<std::pair<double, int>> {
        if (queue->entries.empty()) return std::nullopt;
        auto min = queue->entries.begin();
        for (auto it = queue->entries.begin(); it != queue->entries.end();
             ++it) {
          if (it->time < min->time ||
              (it->time == min->time && it->sequence > min->sequence)) {
            min = it;  // newest-first among ties: the bug
          }
        }
        auto out = std::make_pair(min->time, min->id);
        queue->entries.erase(min);
        return out;
      },
      [queue] { return queue->entries.size(); },
  };
}

// --- execution ---------------------------------------------------------------

struct RunOutcome {
  bool ok = true;
  std::string detail;
};

RunOutcome RunSchedule(const Schedule& schedule, const SubjectFactory& make,
                       bool subject_supports_cancel = true) {
  Subject subject = make();
  RefQueue ref;
  RunOutcome out;
  double floor = 0.0;  // last popped time; pushes land at floor + delta

  const auto fail = [&](std::size_t op_index, const std::string& what) {
    std::ostringstream msg;
    msg << "op " << op_index << ": " << what;
    out.ok = false;
    out.detail = msg.str();
  };

  const auto check_pop = [&](std::size_t op_index) {
    const auto want = ref.Pop();
    const auto got = subject.pop();
    if (want.has_value() != got.has_value()) {
      fail(op_index, want.has_value() ? "subject empty, reference is not"
                                      : "subject popped from empty queue");
      return false;
    }
    if (!want.has_value()) return true;
    if (got->first != want->time || got->second != want->id) {
      std::ostringstream what;
      what << "pop mismatch: subject (" << got->first << ", id " << got->second
           << "), reference (" << want->time << ", id " << want->id << ")";
      fail(op_index, what.str());
      return false;
    }
    floor = want->time;
    return true;
  };

  for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
    const Op& op = schedule.ops[i];
    switch (op.kind) {
      case OpKind::kPush: {
        const double time = floor + op.delta;
        ref.Push(time, op.id);
        subject.push(time, op.id);
        break;
      }
      case OpKind::kPop:
        if (!check_pop(i)) return out;
        break;
      case OpKind::kCancel: {
        if (!subject_supports_cancel) break;
        const bool got = subject.cancel(op.target);
        const bool want = ref.Cancel(op.target);
        if (got != want) {
          std::ostringstream what;
          what << "cancel(" << op.target << ") mismatch: subject "
               << (got ? "removed" : "no-op") << ", reference "
               << (want ? "removed" : "no-op");
          fail(i, what.str());
          return out;
        }
        break;
      }
    }
    if (subject.size() != ref.entries.size()) {
      std::ostringstream what;
      what << "size mismatch: subject " << subject.size() << ", reference "
           << ref.entries.size();
      fail(i, what.str());
      return out;
    }
  }

  // Drain: the full remaining order must match.
  while (!ref.entries.empty() || subject.size() > 0) {
    if (!check_pop(schedule.ops.size())) return out;
  }
  return out;
}

// --- shrinking ---------------------------------------------------------------

// Greedy ddmin, same scheme as consistency_property_test: repeatedly delete
// the largest op chunk that preserves the failure, halving the chunk until
// single ops survive. The result is 1-minimal.
Schedule Shrink(Schedule schedule, const SubjectFactory& make,
                bool subject_supports_cancel = true) {
  const auto still_fails = [&](const Schedule& candidate) {
    return !RunSchedule(candidate, make, subject_supports_cancel).ok;
  };
  std::size_t chunk = std::max<std::size_t>(1, schedule.ops.size() / 2);
  for (;;) {
    bool removed_any = false;
    std::size_t offset = 0;
    while (offset < schedule.ops.size()) {
      Schedule candidate = schedule;
      const std::size_t end = std::min(offset + chunk, candidate.ops.size());
      candidate.ops.erase(candidate.ops.begin() + offset,
                          candidate.ops.begin() + end);
      if (still_fails(candidate)) {
        schedule = std::move(candidate);
        removed_any = true;
      } else {
        offset += chunk;
      }
    }
    if (chunk == 1) {
      if (!removed_any) break;
    } else {
      chunk /= 2;
    }
  }
  return schedule;
}

void RunTrials(const SubjectFactory& make, std::size_t trials,
               bool subject_supports_cancel) {
  const std::uint64_t base = BaseSeed();
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = base + trial * 1000003ULL;
    const Schedule schedule = GenerateSchedule(seed);
    const RunOutcome outcome =
        RunSchedule(schedule, make, subject_supports_cancel);
    if (!outcome.ok) {
      const Schedule minimal = Shrink(schedule, make, subject_supports_cancel);
      const RunOutcome replay =
          RunSchedule(minimal, make, subject_supports_cancel);
      FAIL() << "seed " << seed << " (trial " << trial
             << "): " << outcome.detail << "\nminimal counterexample ("
             << minimal.ops.size() << " ops): " << FormatOps(minimal)
             << "\nminimal failure: " << replay.detail;
    }
  }
}

// --- the battery -------------------------------------------------------------

TEST(CalendarQueueProperty, MatchesReferenceOn1kRandomStreams) {
  RunTrials(CalendarSubject, 1000, /*subject_supports_cancel=*/true);
}

TEST(CalendarQueueProperty, PooledHeapMatchesReference) {
  RunTrials(PooledHeapSubject, 300, /*subject_supports_cancel=*/false);
}

TEST(CalendarQueueProperty, PlantedTieBreakViolationIsCaughtAndShrunk) {
  // The harness must have teeth: a LIFO-among-ties queue fails some stream,
  // and the witness shrinks to a hand-checkable size.
  const std::uint64_t base = BaseSeed();
  bool caught = false;
  for (std::size_t trial = 0; trial < 200 && !caught; ++trial) {
    const Schedule schedule = GenerateSchedule(base + trial * 1000003ULL);
    if (RunSchedule(schedule, LifoTieBreakSubject).ok) continue;
    caught = true;
    const Schedule minimal = Shrink(schedule, LifoTieBreakSubject);
    EXPECT_FALSE(RunSchedule(minimal, LifoTieBreakSubject).ok);
    // Minimal witness: two same-time pushes and a pop (a drain pop needs 0).
    EXPECT_LE(minimal.ops.size(), 4u)
        << "shrinker left a non-minimal witness: " << FormatOps(minimal);
  }
  EXPECT_TRUE(caught)
      << "no generated stream exposed the planted tie-break bug";
}

// --- deterministic edge cases ------------------------------------------------

TEST(CalendarQueueTest, EqualTimesPopInPushOrder) {
  CalendarQueue<int> queue;
  for (int i = 0; i < 100; ++i) queue.Push(SimTime::FromSeconds(1.0), i);
  for (int i = 0; i < 100; ++i) {
    SimTime at;
    EXPECT_EQ(queue.PopMin(&at), i);
    EXPECT_EQ(at.seconds(), 1.0);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueueTest, FarFutureBacklogFallsBackToDirectSearch) {
  // A huge time gap makes the forward scan's year useless; the direct-search
  // fallback must still find the true minimum and jump the calendar to it.
  CalendarQueue<int> queue;
  queue.Push(SimTime::FromSeconds(0.25), 1);
  queue.Push(SimTime::FromSeconds(1e12), 2);
  queue.Push(SimTime::FromSeconds(1e12 + 0.5), 3);
  EXPECT_EQ(queue.PopMin(), 1);
  EXPECT_EQ(queue.PopMin(), 2);
  queue.Push(SimTime::FromSeconds(1e12 + 0.25), 4);  // between the survivors
  EXPECT_EQ(queue.PopMin(), 4);
  EXPECT_EQ(queue.PopMin(), 3);
}

TEST(CalendarQueueTest, GrowAndShrinkPreserveStrictKeyOrder) {
  CalendarQueue<int> queue;
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    queue.Push(SimTime::FromSeconds(rng.Uniform(0.0, 50.0)), i);
  }
  EXPECT_GT(queue.stats().resizes, 0u);
  double last_time = -1.0;
  int pops = 0;
  while (!queue.empty()) {
    SimTime at;
    queue.PopMin(&at);
    EXPECT_GE(at.seconds(), last_time);
    last_time = at.seconds();
    ++pops;
  }
  EXPECT_EQ(pops, 20000);
}

TEST(CalendarQueueTest, StaleCancelAfterSlotReuseIsNoOp) {
  CalendarQueue<int> queue;
  const auto handle = queue.Push(SimTime::FromSeconds(1.0), 1);
  EXPECT_EQ(queue.PopMin(), 1);
  // The node was freed; its slot may be recycled by the next push. The stale
  // handle's generation no longer matches, so the cancel is a no-op.
  queue.Push(SimTime::FromSeconds(2.0), 2);
  EXPECT_FALSE(queue.Cancel(handle));
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.PopMin(), 2);
}

TEST(CalendarQueueTest, CancelledEventNeverPops) {
  CalendarQueue<int> queue;
  queue.Push(SimTime::FromSeconds(1.0), 1);
  const auto doomed = queue.Push(SimTime::FromSeconds(1.0), 2);
  queue.Push(SimTime::FromSeconds(1.0), 3);
  EXPECT_TRUE(queue.Cancel(doomed));
  EXPECT_FALSE(queue.Cancel(doomed));  // double cancel is a no-op
  EXPECT_EQ(queue.PopMin(), 1);
  EXPECT_EQ(queue.PopMin(), 3);
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueueTest, SchedulingBeforeTheLastPopIsRejected) {
  CalendarQueue<int> queue;
  queue.Push(SimTime::FromSeconds(5.0), 1);
  queue.PopMin();
  EXPECT_THROW(queue.Push(SimTime::FromSeconds(4.0), 2), CheckError);
  queue.Push(SimTime::FromSeconds(5.0), 3);  // exactly the floor is fine
  EXPECT_EQ(queue.PopMin(), 3);
}

// --- pool lifetime rules under EventFn payloads (ASan-backed) ----------------

TEST(CalendarQueueTest, PopDuringCallbackPushStormIsPoolSafe) {
  // The lifetime rule the Simulator relies on: the payload is moved out
  // before the caller invokes it, so a callback pushing enough events to
  // grow (and relocate) the pool is safe. ASan turns a violation into a
  // hard failure.
  CalendarQueue<EventFn> queue;
  int fired = 0;
  std::function<void(double)> seed_push = [&](double at) {
    queue.Push(SimTime::FromSeconds(at), [&fired, &queue, at] {
      ++fired;
      for (int i = 0; i < 64; ++i) {
        queue.Push(SimTime::FromSeconds(at + 1.0 + i), [&fired] { ++fired; });
      }
    });
  };
  seed_push(1.0);
  EventFn first = queue.PopMin();
  first();  // grows the pool from inside the "event"
  EXPECT_EQ(fired, 1);
  while (!queue.empty()) {
    EventFn fn = queue.PopMin();
    fn();
  }
  EXPECT_EQ(fired, 65);
}

TEST(CalendarQueueTest, CancelAndTeardownDestroyBoxedPayloads) {
  // Closures above EventFn's inline budget are heap-boxed; cancelling a
  // pending event and destroying a non-empty queue must both free the box
  // (ASan catches leaks and double-frees).
  auto token = std::make_shared<int>(42);
  struct Big {
    std::shared_ptr<int> token;
    char pad[128];
  };
  static_assert(sizeof(Big) > EventFn::kInlineBytes);
  {
    CalendarQueue<EventFn> queue;
    const auto doomed = queue.Push(
        SimTime::FromSeconds(1.0),
        [big = Big{token, {}}] { FAIL() << "cancelled event fired"; });
    queue.Push(SimTime::FromSeconds(2.0),
               [big = Big{token, {}}] { FAIL() << "never-popped event fired"; });
    EXPECT_EQ(token.use_count(), 3);
    EXPECT_TRUE(queue.Cancel(doomed));
    EXPECT_EQ(token.use_count(), 2) << "cancel must destroy the payload now";
  }
  EXPECT_EQ(token.use_count(), 1) << "teardown must destroy pending payloads";
}

}  // namespace
}  // namespace specsync
