// Tests for the discrete-event engine, network model, stalls, speed models.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "common/check.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/speed_model.h"

namespace specsync {
namespace {

SimTime T(double s) { return SimTime::FromSeconds(s); }
Duration D(double s) { return Duration::Seconds(s); }

TEST(SimulatorTest, RunsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(T(3.0), [&] { order.push_back(3); });
  sim.ScheduleAt(T(1.0), [&] { order.push_back(1); });
  sim.ScheduleAt(T(2.0), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), T(3.0));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulatorTest, EqualTimesAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(T(1.0), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(T(1.0), [&] {
    ++fired;
    sim.ScheduleAfter(D(1.0), [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), T(2.0));
}

TEST(SimulatorTest, RunUntilLeavesLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(T(1.0), [&] { ++fired; });
  sim.ScheduleAt(T(5.0), [&] { ++fired; });
  sim.Run(T(2.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventAtExactlyUntilRuns) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(T(2.0), [&] { ++fired; });
  sim.Run(T(2.0));
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, RequestStopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(T(1.0), [&] {
    ++fired;
    sim.RequestStop();
  });
  sim.ScheduleAt(T(2.0), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, SchedulingInPastThrows) {
  Simulator sim;
  sim.ScheduleAt(T(5.0), [] {});
  sim.Run();
  EXPECT_THROW(sim.ScheduleAt(T(1.0), [] {}), CheckError);
  EXPECT_THROW(sim.ScheduleAfter(D(-1.0), [] {}), CheckError);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
  sim.ScheduleAt(T(1.0), [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

// --- network ------------------------------------------------------------------

TEST(NetworkTest, DeterministicWithoutJitter) {
  NetworkConfig config;
  config.base_latency = D(0.001);
  config.bandwidth_bytes_per_sec = 1e6;
  config.jitter_sigma = 0.0;
  NetworkModel network(config);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(network.TransferTime(1000, rng).seconds(), 0.002);
  EXPECT_DOUBLE_EQ(network.TransferTime(0, rng).seconds(), 0.001);
}

TEST(NetworkTest, JitterHasMedianNearNominal) {
  NetworkConfig config;
  config.base_latency = D(0.01);
  config.bandwidth_bytes_per_sec = 1e9;
  config.jitter_sigma = 0.3;
  NetworkModel network(config);
  Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 4001; ++i) {
    samples.push_back(network.TransferTime(0, rng).seconds());
  }
  std::nth_element(samples.begin(), samples.begin() + 2000, samples.end());
  EXPECT_NEAR(samples[2000], 0.01, 0.002);
}

TEST(NetworkTest, InvalidConfigThrows) {
  NetworkConfig bad;
  bad.bandwidth_bytes_per_sec = 0.0;
  EXPECT_THROW(NetworkModel{bad}, CheckError);
}

// --- stalls --------------------------------------------------------------------

TEST(StallScheduleTest, DisabledIsIdentity) {
  StallSchedule stalls(StallConfig{}, Rng(1));
  EXPECT_EQ(stalls.Defer(T(5.0)), T(5.0));
  EXPECT_FALSE(stalls.enabled());
}

TEST(StallScheduleTest, DefersIntoStallEndAndPreservesOrder) {
  StallConfig config;
  config.enabled = true;
  config.mean_gap = D(10.0);
  config.mean_duration = D(2.0);
  StallSchedule stalls(config, Rng(3));
  SimTime previous = SimTime::Zero();
  for (double t = 0.0; t < 200.0; t += 0.25) {
    const SimTime deferred = stalls.Defer(T(t));
    EXPECT_GE(deferred, T(t));          // never earlier
    EXPECT_GE(deferred, previous);      // monotone in arrival order
    previous = deferred;
  }
}

TEST(StallScheduleTest, SomeArrivalsActuallyDeferred) {
  StallConfig config;
  config.enabled = true;
  config.mean_gap = D(5.0);
  config.mean_duration = D(5.0);  // ~50% stalled
  StallSchedule stalls(config, Rng(4));
  int deferred = 0;
  for (double t = 0.0; t < 500.0; t += 0.5) {
    if (stalls.Defer(T(t)) > T(t)) ++deferred;
  }
  EXPECT_GT(deferred, 200);
  EXPECT_LT(deferred, 900);
}

TEST(StallScheduleTest, BatchingCreatesBursts) {
  // All arrivals during one stall get the same delivery time.
  StallConfig config;
  config.enabled = true;
  config.mean_gap = D(1000.0);
  config.mean_duration = D(50.0);
  StallSchedule stalls(config, Rng(5));
  // Find a stalled arrival, then verify nearby arrivals coalesce.
  for (double t = 0.0; t < 5000.0; t += 1.0) {
    const SimTime d0 = stalls.Defer(T(t));
    if (d0 > T(t + 2.0)) {
      EXPECT_EQ(stalls.Defer(T(t + 1.0)), d0);
      return;
    }
  }
  FAIL() << "no stall found in horizon";
}

TEST(StallScheduleTest, OutOfOrderQueriesMatchMonotone) {
  // Regression: Defer's lazily generated window list is prefix-complete, so
  // querying arrivals out of order must give bit-identical answers to
  // querying them sorted. (Fault-injected delays and retries produce
  // out-of-order Defer calls; a naive lazy generator would re-seed or skip
  // windows for the earlier times.)
  StallConfig config;
  config.enabled = true;
  config.mean_gap = D(5.0);
  config.mean_duration = D(2.0);

  std::vector<double> times;
  for (double t = 0.0; t < 300.0; t += 0.3) times.push_back(t);

  StallSchedule monotone(config, Rng(17));
  std::vector<SimTime> expected;
  expected.reserve(times.size());
  for (double t : times) expected.push_back(monotone.Defer(T(t)));

  // Shuffle deterministically and replay the same queries out of order.
  std::vector<std::size_t> order(times.size());
  std::iota(order.begin(), order.end(), 0u);
  std::mt19937 gen(99);
  std::shuffle(order.begin(), order.end(), gen);
  StallSchedule shuffled(config, Rng(17));
  for (std::size_t i : order) {
    EXPECT_EQ(shuffled.Defer(T(times[i])), expected[i]) << "at t=" << times[i];
  }

  // Repeat queries are stable too (a retried message re-asks for the past).
  StallSchedule repeat(config, Rng(17));
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(repeat.Defer(T(times[i])), expected[i]);
    if (i >= 10) {
      EXPECT_EQ(repeat.Defer(T(times[i - 10])), expected[i - 10]);
    }
  }
}

// --- speed models ---------------------------------------------------------------

TEST(SpeedModelTest, HomogeneousNoJitterIsExact) {
  HomogeneousSpeedModel model(D(2.0), 0.0);
  Rng rng(1);
  EXPECT_EQ(model.ComputeTime(0, T(0.0), rng), D(2.0));
  EXPECT_EQ(model.MeanComputeTime(5), D(2.0));
}

TEST(SpeedModelTest, HeterogeneousClasses) {
  auto model = HeterogeneousSpeedModel::EvenClasses(D(1.0), 4, {1.0, 2.0}, 0.0);
  EXPECT_EQ(model->MeanComputeTime(0), D(1.0));
  EXPECT_EQ(model->MeanComputeTime(1), D(2.0));
  EXPECT_EQ(model->MeanComputeTime(2), D(1.0));
  EXPECT_EQ(model->MeanComputeTime(3), D(2.0));
  EXPECT_THROW(model->MeanComputeTime(4), CheckError);
}

TEST(SpeedModelTest, StragglerInjectionRate) {
  auto inner = std::make_unique<HomogeneousSpeedModel>(D(1.0), 0.0);
  StragglerInjectingSpeedModel model(std::move(inner), 0.2, 4.0);
  Rng rng(6);
  int slowed = 0;
  for (int i = 0; i < 5000; ++i) {
    if (model.ComputeTime(0, T(0.0), rng) > D(2.0)) ++slowed;
  }
  EXPECT_NEAR(slowed / 5000.0, 0.2, 0.03);
  EXPECT_DOUBLE_EQ(model.MeanComputeTime(0).seconds(), 1.0 + 0.2 * 3.0);
}

TEST(ContentionModelTest, CohortSlowsTogetherDuringEvent) {
  ContentionConfig config;
  config.mean_gap = D(10.0);
  config.mean_duration = D(10.0);
  config.cohort_fraction = 0.5;
  config.slowdown = 3.0;
  auto inner = std::make_unique<HomogeneousSpeedModel>(D(1.0), 0.0);
  ContentionSpeedModel model(std::move(inner), config, Rng(7));
  Rng rng(8);
  // Over a long horizon, roughly busy_frac * cohort_frac of samples slowed.
  int slowed = 0;
  const int kSamples = 4000;
  for (int i = 0; i < kSamples; ++i) {
    const SimTime now = T(i * 0.25);
    if (model.ComputeTime(i % 16, now, rng) > D(2.0)) ++slowed;
  }
  const double expected = 0.5 * 0.5;  // busy fraction * cohort fraction
  EXPECT_NEAR(static_cast<double>(slowed) / kSamples, expected, 0.1);
  EXPECT_DOUBLE_EQ(model.MeanComputeTime(0).seconds(), 1.0 + expected * 2.0);
}

TEST(ContentionModelTest, MembershipDeterministicWithinEvent) {
  ContentionConfig config;
  config.mean_gap = D(5.0);
  config.mean_duration = D(100.0);
  config.cohort_fraction = 0.5;
  config.slowdown = 2.0;
  auto inner = std::make_unique<HomogeneousSpeedModel>(D(1.0), 0.0);
  ContentionSpeedModel model(std::move(inner), config, Rng(9));
  // Within one long event, a worker's contended status must not flip.
  const SimTime probe = T(50.0);
  for (WorkerId w = 0; w < 8; ++w) {
    const bool first = model.IsContended(w, probe);
    EXPECT_EQ(model.IsContended(w, probe + D(0.5)), first);
  }
}

}  // namespace
}  // namespace specsync
