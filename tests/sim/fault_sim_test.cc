// Fault injection through the full cluster simulation: zero-fault runs stay
// bit-identical, faulty runs stay deterministic, and crashes/slowdowns/losses
// produce the expected protocol-level behavior.
#include <gtest/gtest.h>

#include <algorithm>

#include "data/synthetic.h"
#include "models/softmax_regression.h"
#include "sim/cluster.h"

namespace specsync {
namespace {

SimTime T(double s) { return SimTime::FromSeconds(s); }
Duration D(double s) { return Duration::Seconds(s); }

std::shared_ptr<const Model> TinyModel(std::uint64_t seed) {
  Rng rng(seed);
  ClassificationSpec spec;
  spec.num_examples = 400;
  spec.feature_dim = 8;
  spec.num_classes = 3;
  auto data = std::make_shared<ClassificationDataset>(
      GenerateClassification(spec, rng));
  return std::make_shared<SoftmaxRegressionModel>(std::move(data),
                                                  SoftmaxRegressionConfig{});
}

ClusterSimConfig BaseConfig() {
  ClusterSimConfig config;
  config.num_workers = 4;
  config.num_servers = 2;
  config.batch_size = 16;
  config.eval_interval = Duration::Seconds(5.0);
  config.eval_subsample = 200;
  config.max_time = SimTime::FromSeconds(120.0);
  config.seed = 99;
  // Speculation on, so the scheduler's fault handling is exercised too.
  SpeculationParams params;
  params.abort_time = D(0.5);
  params.abort_rate = 0.5;
  config.scheme = SchemeSpec::Cherrypick(params);
  return config;
}

std::unique_ptr<SpeedModel> Speed() {
  return std::make_unique<HomogeneousSpeedModel>(Duration::Seconds(1.0), 0.1);
}

SimResult RunOnce(const ClusterSimConfig& config) {
  ClusterSim sim(TinyModel(1), std::make_shared<ConstantSchedule>(0.2),
                 Speed(), config);
  return sim.Run();
}

void ExpectIdenticalRuns(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.total_pushes, b.total_pushes);
  EXPECT_EQ(a.total_aborts, b.total_aborts);
  EXPECT_DOUBLE_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.final_weights, b.final_weights);
  ASSERT_EQ(a.trace.pushes().size(), b.trace.pushes().size());
  for (std::size_t i = 0; i < a.trace.pushes().size(); ++i) {
    EXPECT_EQ(a.trace.pushes()[i].time, b.trace.pushes()[i].time);
    EXPECT_EQ(a.trace.pushes()[i].worker, b.trace.pushes()[i].worker);
    EXPECT_EQ(a.trace.pushes()[i].iteration, b.trace.pushes()[i].iteration);
  }
}

// --- acceptance: all-zero fault config changes nothing -------------------------

TEST(FaultSimTest, ZeroProbabilityFaultsAreBitIdentical) {
  const SimResult baseline = RunOnce(BaseConfig());

  ClusterSimConfig with_faults = BaseConfig();
  // Explicitly-present but all-zero fault config: every probability zero, no
  // scheduled events — must not consume RNG or perturb a single event.
  with_faults.faults.data.drop_probability = 0.0;
  with_faults.faults.data.duplicate_probability = 0.0;
  with_faults.faults.control.drop_probability = 0.0;
  with_faults.faults.control.delay_probability = 0.0;
  with_faults.faults.seed = 0xDEADBEEF;  // unused when inert
  const SimResult zero = RunOnce(with_faults);

  ExpectIdenticalRuns(baseline, zero);
  EXPECT_EQ(zero.fault_stats.messages_seen, 0u);
  EXPECT_EQ(zero.fault_stats.drops, 0u);
  EXPECT_EQ(zero.scheduler_stats.duplicate_notifies, 0u);
  EXPECT_EQ(zero.scheduler_stats.late_checks, 0u);
  EXPECT_EQ(zero.scheduler_stats.worker_departures, 0u);
}

TEST(FaultSimTest, FaultyRunsAreDeterministic) {
  ClusterSimConfig config = BaseConfig();
  config.faults.data.drop_probability = 0.05;
  config.faults.data.duplicate_probability = 0.05;
  config.faults.control.drop_probability = 0.1;
  config.faults.control.duplicate_probability = 0.1;
  config.faults.control.delay_probability = 0.2;
  config.faults.control.delay_mean = Duration::Milliseconds(20.0);
  config.faults.crashes.push_back(CrashEvent{1, T(40.0), T(70.0)});
  config.faults.slowdowns.push_back(SlowdownWindow{2, T(10.0), T(30.0), 2.0});
  const SimResult a = RunOnce(config);
  const SimResult b = RunOnce(config);
  ExpectIdenticalRuns(a, b);
  EXPECT_EQ(a.fault_stats.drops, b.fault_stats.drops);
  EXPECT_EQ(a.fault_stats.duplicates, b.fault_stats.duplicates);
  EXPECT_EQ(a.scheduler_stats.duplicate_notifies,
            b.scheduler_stats.duplicate_notifies);
}

// --- message faults ------------------------------------------------------------

TEST(FaultSimTest, NotifyDropsDoNotStallTraining) {
  ClusterSimConfig config = BaseConfig();
  config.faults.control.drop_probability = 0.3;
  const SimResult result = RunOnce(config);
  EXPECT_GT(result.total_pushes, 100u);
  EXPECT_GT(result.fault_stats.drops, 0u);
  // Lost notifies: the scheduler hears about fewer pushes than happened.
  EXPECT_LT(result.scheduler_stats.notifies_received, result.total_pushes);
  EXPECT_TRUE(AllFinite(result.final_weights));
}

TEST(FaultSimTest, DuplicateNotifiesAreDetected) {
  ClusterSimConfig config = BaseConfig();
  config.faults.control.duplicate_probability = 0.5;
  const SimResult result = RunOnce(config);
  EXPECT_GT(result.fault_stats.duplicates, 0u);
  EXPECT_GT(result.scheduler_stats.duplicate_notifies, 0u);
  // Dedup means the ledger still matches reality: accepted notifies can
  // never exceed actual pushes (lost pushes also notify, so >= is wrong;
  // with only duplication enabled the two are equal).
  EXPECT_EQ(result.scheduler_stats.notifies_received -
                result.scheduler_stats.duplicate_notifies,
            result.total_pushes);
}

TEST(FaultSimTest, GradientDropsLoseUpdatesButNotWorkers) {
  ClusterSimConfig config = BaseConfig();
  config.faults.data.drop_probability = 0.2;
  const SimResult result = RunOnce(config);
  EXPECT_GT(result.fault_stats.drops, 0u);
  // Workers keep iterating (pushes keep landing) despite lost gradients.
  EXPECT_GT(result.total_pushes, 50u);
  EXPECT_TRUE(AllFinite(result.final_weights));
  // Lost pushes still notify: the scheduler sees more pushes than the
  // servers applied.
  EXPECT_GT(result.scheduler_stats.notifies_received -
                result.scheduler_stats.duplicate_notifies,
            result.total_pushes);
}

// --- crash / rejoin ------------------------------------------------------------

TEST(FaultSimTest, PermanentCrashDoesNotDeadlockEpochs) {
  ClusterSimConfig config = BaseConfig();
  config.faults.crashes.push_back(CrashEvent{2, T(30.0), std::nullopt});
  const SimResult result = RunOnce(config);
  EXPECT_EQ(result.fault_stats.crashes, 1u);
  EXPECT_EQ(result.fault_stats.rejoins, 0u);
  EXPECT_EQ(result.scheduler_stats.worker_departures, 1u);
  // Epochs kept finishing after the crash — the dead worker was excused.
  EXPECT_GT(result.scheduler_stats.lost_worker_epochs_unblocked, 0u);
  // No pushes from the dead worker except messages already in flight.
  for (const PushEvent& push : result.trace.pushes()) {
    if (push.worker == 2) {
      EXPECT_LT(push.time, T(31.0));
    }
  }
  // The survivors kept training.
  std::uint64_t survivor_pushes_late = 0;
  for (const PushEvent& push : result.trace.pushes()) {
    if (push.worker != 2 && push.time > T(60.0)) ++survivor_pushes_late;
  }
  EXPECT_GT(survivor_pushes_late, 10u);
}

TEST(FaultSimTest, CrashWithRejoinResumesPushing) {
  ClusterSimConfig config = BaseConfig();
  config.faults.crashes.push_back(CrashEvent{0, T(20.0), T(50.0)});
  const SimResult result = RunOnce(config);
  EXPECT_EQ(result.fault_stats.crashes, 1u);
  EXPECT_EQ(result.fault_stats.rejoins, 1u);
  EXPECT_EQ(result.scheduler_stats.worker_rejoins, 1u);
  std::uint64_t pushes_while_down = 0;
  std::uint64_t pushes_after_rejoin = 0;
  for (const PushEvent& push : result.trace.pushes()) {
    if (push.worker != 0) continue;
    if (push.time > T(21.0) && push.time < T(50.0)) ++pushes_while_down;
    if (push.time > T(50.0)) ++pushes_after_rejoin;
  }
  EXPECT_EQ(pushes_while_down, 0u);
  EXPECT_GT(pushes_after_rejoin, 10u);
}

// --- slowdown windows ----------------------------------------------------------

TEST(FaultSimTest, SlowdownWindowSparsifiesPushes) {
  auto count_in = [](const SimResult& result, WorkerId worker, SimTime begin,
                     SimTime end) {
    std::uint64_t count = 0;
    for (const PushEvent& push : result.trace.pushes()) {
      if (push.worker == worker && push.time >= begin && push.time < end) {
        ++count;
      }
    }
    return count;
  };
  const SimResult healthy = RunOnce(BaseConfig());
  ClusterSimConfig config = BaseConfig();
  config.faults.slowdowns.push_back(SlowdownWindow{0, T(10.0), T(60.0), 4.0});
  const SimResult slowed = RunOnce(config);
  const std::uint64_t healthy_pushes = count_in(healthy, 0, T(10.0), T(60.0));
  const std::uint64_t slowed_pushes = count_in(slowed, 0, T(10.0), T(60.0));
  EXPECT_LT(slowed_pushes, healthy_pushes / 2);
  EXPECT_GT(slowed_pushes, 0u);
}

// --- NetworkModel::PlanTransfer hook -------------------------------------------

TEST(FaultSimTest, PlanTransferMatchesTransferTimeWithoutFaults) {
  NetworkModel network(NetworkConfig{});
  Rng a(11);
  Rng b(11);
  FaultPlan inert((FaultPlanConfig()));
  for (int i = 0; i < 100; ++i) {
    const Duration plain = network.TransferTime(1 << 16, a);
    const NetworkModel::TransferPlan plan =
        network.PlanTransfer(1 << 16, LinkClass::kData, b, &inert);
    EXPECT_EQ(plan.delay, plain);
    EXPECT_FALSE(plan.drop);
    EXPECT_FALSE(plan.duplicate);
  }
  // Null plan behaves the same.
  Rng c(11);
  const NetworkModel::TransferPlan plan =
      network.PlanTransfer(1 << 16, LinkClass::kData, c, nullptr);
  EXPECT_FALSE(plan.drop);
}

TEST(FaultSimTest, PlanTransferAppliesFaultDecision) {
  NetworkModel network(NetworkConfig{});
  FaultPlanConfig config;
  config.data.drop_probability = 0.5;
  config.data.delay_probability = 0.5;
  FaultPlan plan(config);
  Rng rng(12);
  int drops = 0;
  int delayed = 0;
  for (int i = 0; i < 2000; ++i) {
    const NetworkModel::TransferPlan t =
        network.PlanTransfer(1024, LinkClass::kData, rng, &plan);
    if (t.drop) ++drops;
    // Fault-injected extra delay is added on top of the nominal transfer
    // time; the nominal time for 1 KiB is well under a millisecond.
    if (t.delay > Duration::Milliseconds(2.0)) ++delayed;
  }
  EXPECT_NEAR(drops / 2000.0, 0.5, 0.05);
  EXPECT_GT(delayed, 100);
}

}  // namespace
}  // namespace specsync
