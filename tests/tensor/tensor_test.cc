// Tests for vector.h, matrix.h, sparse.h, nn_ops.h.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "tensor/matrix.h"
#include "tensor/nn_ops.h"
#include "tensor/sparse.h"
#include "tensor/vector.h"

namespace specsync {
namespace {

// --- vector ------------------------------------------------------------------

TEST(VectorTest, Axpy) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{10.0, 20.0, 30.0};
  Axpy(2.0, x, y);
  EXPECT_EQ(y, (std::vector<double>{12.0, 24.0, 36.0}));
}

TEST(VectorTest, AxpySizeMismatchThrows) {
  std::vector<double> x{1.0};
  std::vector<double> y{1.0, 2.0};
  EXPECT_THROW(Axpy(1.0, x, y), CheckError);
}

TEST(VectorTest, DotAndNorm) {
  std::vector<double> a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(Dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(Norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(SumOfSquares(a), 25.0);
}

TEST(VectorTest, ScaleZeroClip) {
  std::vector<double> v{-10.0, 0.5, 10.0};
  Scale(0.5, v);
  EXPECT_EQ(v, (std::vector<double>{-5.0, 0.25, 5.0}));
  ClipInPlace(v, 1.0);
  EXPECT_EQ(v, (std::vector<double>{-1.0, 0.25, 1.0}));
  Zero(v);
  EXPECT_EQ(v, (std::vector<double>{0.0, 0.0, 0.0}));
}

TEST(VectorTest, ClipRequiresPositiveBound) {
  std::vector<double> v{1.0};
  EXPECT_THROW(ClipInPlace(v, 0.0), CheckError);
}

TEST(VectorTest, SubAndAllFinite) {
  std::vector<double> a{5.0, 7.0};
  std::vector<double> b{2.0, 3.0};
  std::vector<double> out(2);
  Sub(a, b, out);
  EXPECT_EQ(out, (std::vector<double>{3.0, 4.0}));
  EXPECT_TRUE(AllFinite(out));
  out[0] = std::nan("");
  EXPECT_FALSE(AllFinite(out));
  out[0] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(AllFinite(out));
}

// --- matrix ------------------------------------------------------------------

TEST(MatrixTest, ViewIndexing) {
  std::vector<double> storage{1, 2, 3, 4, 5, 6};
  MatrixView m(storage, 2, 3);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 6.0);
  EXPECT_THROW(m.at(2, 0), CheckError);
  m.at(0, 1) = 42.0;
  EXPECT_DOUBLE_EQ(storage[1], 42.0);
}

TEST(MatrixTest, ViewSizeMismatchThrows) {
  std::vector<double> storage(5);
  EXPECT_THROW(MatrixView(storage, 2, 3), CheckError);
}

TEST(MatrixTest, RowSpan) {
  std::vector<double> storage{1, 2, 3, 4, 5, 6};
  ConstMatrixView m(storage, 2, 3);
  auto row = m.row(1);
  EXPECT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
}

TEST(MatrixTest, Gemv) {
  std::vector<double> storage{1, 2, 3, 4};  // [[1,2],[3,4]]
  ConstMatrixView m(storage, 2, 2);
  std::vector<double> x{1.0, 1.0};
  std::vector<double> y(2);
  Gemv(m, x, y);
  EXPECT_EQ(y, (std::vector<double>{3.0, 7.0}));
}

TEST(MatrixTest, GemvTransposed) {
  std::vector<double> storage{1, 2, 3, 4};
  ConstMatrixView m(storage, 2, 2);
  std::vector<double> x{1.0, 1.0};
  std::vector<double> y(2);
  GemvTransposed(m, x, y);
  EXPECT_EQ(y, (std::vector<double>{4.0, 6.0}));
}

TEST(MatrixTest, AddOuterProduct) {
  std::vector<double> storage(4, 0.0);
  MatrixView m(storage, 2, 2);
  std::vector<double> u{1.0, 2.0};
  std::vector<double> v{3.0, 4.0};
  AddOuterProduct(m, 2.0, u, v);
  EXPECT_EQ(storage, (std::vector<double>{6.0, 8.0, 12.0, 16.0}));
}

TEST(MatrixTest, GemvTransposeConsistency) {
  // <W x, y> == <x, W^T y> for random-ish data.
  std::vector<double> storage{0.5, -1.0, 2.0, 0.25, 1.5, -0.75};
  ConstMatrixView w(storage, 2, 3);
  std::vector<double> x{1.0, -2.0, 0.5};
  std::vector<double> y{0.3, -0.7};
  std::vector<double> wx(2), wty(3);
  Gemv(w, x, wx);
  GemvTransposed(w, y, wty);
  EXPECT_NEAR(Dot(wx, y), Dot(x, wty), 1e-12);
}

// --- sparse ------------------------------------------------------------------

TEST(SparseTest, ScatterAdd) {
  SparseUpdate update;
  update.Add(1, 2.0);
  update.Add(3, -1.0);
  std::vector<double> dest(5, 1.0);
  update.ScatterAdd(2.0, dest);
  EXPECT_EQ(dest, (std::vector<double>{1.0, 5.0, 1.0, -1.0, 1.0}));
}

TEST(SparseTest, ScatterOutOfRangeThrows) {
  SparseUpdate update;
  update.Add(10, 1.0);
  std::vector<double> dest(5, 0.0);
  EXPECT_THROW(update.ScatterAdd(1.0, dest), CheckError);
}

TEST(SparseTest, CoalesceSortsAndSums) {
  SparseUpdate update;
  update.Add(5, 1.0);
  update.Add(2, 2.0);
  update.Add(5, 3.0);
  update.Add(2, -1.0);
  update.Coalesce();
  ASSERT_EQ(update.nnz(), 2u);
  EXPECT_EQ(update.indices()[0], 2u);
  EXPECT_DOUBLE_EQ(update.values()[0], 1.0);
  EXPECT_EQ(update.indices()[1], 5u);
  EXPECT_DOUBLE_EQ(update.values()[1], 4.0);
}

TEST(SparseTest, CoalescePreservesScatterSemantics) {
  SparseUpdate a;
  a.Add(0, 1.0);
  a.Add(2, 2.0);
  a.Add(0, 3.0);
  SparseUpdate b = a;
  b.Coalesce();
  std::vector<double> da(3, 0.0), db(3, 0.0);
  a.ScatterAdd(1.0, da);
  b.ScatterAdd(1.0, db);
  EXPECT_EQ(da, db);
}

TEST(SparseTest, ScaleValuesAndWireBytes) {
  SparseUpdate update;
  update.Add(1, 2.0);
  update.Add(2, 4.0);
  update.ScaleValues(0.5);
  EXPECT_DOUBLE_EQ(update.values()[0], 1.0);
  EXPECT_DOUBLE_EQ(update.values()[1], 2.0);
  EXPECT_EQ(update.wire_bytes(), 32u);
}

TEST(SparseTest, ToDense) {
  SparseUpdate update;
  update.Add(0, 1.5);
  update.Add(3, -2.0);
  const auto dense = ToDense(update, 4);
  EXPECT_EQ(dense, (std::vector<double>{1.5, 0.0, 0.0, -2.0}));
}

TEST(SparseTest, EmptyAndClear) {
  SparseUpdate update;
  EXPECT_TRUE(update.empty());
  update.Add(0, 1.0);
  EXPECT_FALSE(update.empty());
  update.Clear();
  EXPECT_TRUE(update.empty());
  EXPECT_EQ(update.wire_bytes(), 0u);
}

// --- nn_ops ------------------------------------------------------------------

TEST(NnOpsTest, SoftmaxSumsToOne) {
  std::vector<double> x{1.0, 2.0, 3.0};
  SoftmaxInPlace(x);
  EXPECT_NEAR(x[0] + x[1] + x[2], 1.0, 1e-12);
  EXPECT_GT(x[2], x[1]);
  EXPECT_GT(x[1], x[0]);
}

TEST(NnOpsTest, SoftmaxNumericallyStable) {
  std::vector<double> x{1000.0, 1000.0};
  SoftmaxInPlace(x);
  EXPECT_NEAR(x[0], 0.5, 1e-12);
  EXPECT_TRUE(AllFinite(x));
}

TEST(NnOpsTest, ReluAndBackward) {
  std::vector<double> x{-1.0, 0.0, 2.0};
  std::vector<double> out(3);
  Relu(x, out);
  EXPECT_EQ(out, (std::vector<double>{0.0, 0.0, 2.0}));
  std::vector<double> grad_out{1.0, 1.0, 1.0};
  std::vector<double> grad_in(3);
  ReluBackward(x, grad_out, grad_in);
  EXPECT_EQ(grad_in, (std::vector<double>{0.0, 0.0, 1.0}));
}

TEST(NnOpsTest, CrossEntropy) {
  std::vector<double> probs{0.1, 0.7, 0.2};
  EXPECT_NEAR(CrossEntropy(probs, 1), -std::log(0.7), 1e-12);
  EXPECT_THROW(CrossEntropy(probs, 3), CheckError);
}

TEST(NnOpsTest, CrossEntropyFloorsAtZeroProbability) {
  std::vector<double> probs{1.0, 0.0};
  EXPECT_TRUE(std::isfinite(CrossEntropy(probs, 1)));
}

TEST(NnOpsTest, ArgMax) {
  std::vector<double> x{1.0, 5.0, 3.0, 5.0};
  EXPECT_EQ(ArgMax(x), 1u);  // first max on ties
}

}  // namespace
}  // namespace specsync
