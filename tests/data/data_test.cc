// Tests for synthetic dataset generators and sharding.
#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "common/stats.h"
#include "data/sharding.h"
#include "data/synthetic.h"
#include "tensor/vector.h"

namespace specsync {
namespace {

TEST(SyntheticClassificationTest, ShapeAndLabels) {
  Rng rng(1);
  ClassificationSpec spec;
  spec.num_examples = 100;
  spec.feature_dim = 8;
  spec.num_classes = 4;
  const auto data = GenerateClassification(spec, rng);
  EXPECT_EQ(data.size(), 100u);
  EXPECT_EQ(data.feature_dim(), 8u);
  EXPECT_EQ(data.num_classes(), 4u);
  std::set<std::uint32_t> labels;
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data.example(i).features.size(), 8u);
    labels.insert(data.example(i).label);
  }
  EXPECT_EQ(labels.size(), 4u);  // balanced round-robin labeling
}

TEST(SyntheticClassificationTest, FeaturesAreUnitNormalized) {
  Rng rng(2);
  ClassificationSpec spec;
  spec.num_examples = 2000;
  spec.feature_dim = 64;
  spec.num_classes = 10;
  const auto data = GenerateClassification(spec, rng);
  RunningStats norms;
  for (std::size_t i = 0; i < data.size(); ++i) {
    norms.Add(SumOfSquares(data.example(i).features));
  }
  // E||x||^2 = separation^2/d + 1 with defaults (sep 2, noise 1): ~1.06.
  EXPECT_NEAR(norms.mean(), 1.0 + 4.0 / 64.0, 0.1);
}

TEST(SyntheticClassificationTest, SameSeedSameData) {
  ClassificationSpec spec;
  spec.num_examples = 10;
  spec.feature_dim = 4;
  spec.num_classes = 2;
  Rng a(7), b(7);
  const auto da = GenerateClassification(spec, a);
  const auto db = GenerateClassification(spec, b);
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da.example(i).features, db.example(i).features);
  }
}

TEST(SyntheticClassificationTest, SeparationMakesClassesDistinguishable) {
  // With huge separation and tiny noise, nearest-centroid on a fresh sample
  // of the same class should be closer than to other classes; we proxy this
  // by checking within-class distances < between-class distances.
  Rng rng(3);
  ClassificationSpec spec;
  spec.num_examples = 200;
  spec.feature_dim = 16;
  spec.num_classes = 2;
  spec.class_separation = 20.0;
  spec.noise_stddev = 0.1;
  const auto data = GenerateClassification(spec, rng);
  double within = 0.0, between = 0.0;
  int nw = 0, nb = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t j = i + 1; j < 50; ++j) {
      std::vector<double> diff(16);
      Sub(data.example(i).features, data.example(j).features, diff);
      const double d = Norm2(diff);
      if (data.example(i).label == data.example(j).label) {
        within += d;
        ++nw;
      } else {
        between += d;
        ++nb;
      }
    }
  }
  EXPECT_LT(within / nw, between / nb);
}

TEST(SyntheticRatingsTest, ShapeAndRanges) {
  Rng rng(4);
  RatingsSpec spec;
  spec.num_users = 50;
  spec.num_items = 30;
  spec.num_ratings = 500;
  const auto data = GenerateRatings(spec, rng);
  EXPECT_EQ(data.size(), 500u);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_LT(data.rating(i).user, 50u);
    EXPECT_LT(data.rating(i).item, 30u);
  }
}

TEST(SyntheticRatingsTest, RatingsHaveUnitScale) {
  Rng rng(5);
  RatingsSpec spec;
  spec.num_users = 200;
  spec.num_items = 200;
  spec.num_ratings = 20000;
  spec.true_rank = 8;
  const auto data = GenerateRatings(spec, rng);
  RunningStats values;
  for (std::size_t i = 0; i < data.size(); ++i) values.Add(data.rating(i).value);
  EXPECT_NEAR(values.mean(), 0.0, 0.1);
  EXPECT_NEAR(values.stddev(), 1.0, 0.25);
}

TEST(DatasetTest, AddValidation) {
  ClassificationDataset data(3, 2);
  EXPECT_THROW(data.Add(Example{{1.0, 2.0}, 0}), CheckError);       // bad dim
  EXPECT_THROW(data.Add(Example{{1.0, 2.0, 3.0}, 5}), CheckError);  // bad label
  RatingsDataset ratings(10, 10);
  EXPECT_THROW(ratings.Add(Rating{10, 0, 1.0}), CheckError);
  EXPECT_THROW(ratings.Add(Rating{0, 10, 1.0}), CheckError);
}

TEST(ShardingTest, BalancedAndComplete) {
  const auto shards = ShardIndices(10, 3);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].size(), 4u);
  EXPECT_EQ(shards[1].size(), 3u);
  EXPECT_EQ(shards[2].size(), 3u);
  std::set<std::size_t> all;
  for (const auto& shard : shards) all.insert(shard.begin(), shard.end());
  EXPECT_EQ(all.size(), 10u);
}

TEST(ShardingTest, MoreShardsThanItems) {
  const auto shards = ShardIndices(2, 5);
  EXPECT_EQ(shards[0].size(), 1u);
  EXPECT_EQ(shards[1].size(), 1u);
  EXPECT_TRUE(shards[2].empty());
}

TEST(BatchSamplerTest, BatchShapeAndRange) {
  BatchSampler sampler({5, 6, 7}, 8, Rng(1));
  const auto batch = sampler.NextBatch();
  EXPECT_EQ(batch.size(), 8u);
  for (std::size_t idx : batch) {
    EXPECT_TRUE(idx == 5 || idx == 6 || idx == 7);
  }
}

TEST(BatchSamplerTest, EmptyShardThrows) {
  EXPECT_THROW(BatchSampler({}, 4, Rng(1)), CheckError);
}

TEST(BatchSamplerTest, DeterministicForSeed) {
  BatchSampler a({1, 2, 3, 4}, 4, Rng(9));
  BatchSampler b({1, 2, 3, 4}, 4, Rng(9));
  EXPECT_EQ(a.NextBatch(), b.NextBatch());
}

}  // namespace
}  // namespace specsync
