// Tests for the seeded fault-injection plan: deterministic replay, injection
// rates within statistical tolerance, slowdown/crash schedules, validation.
#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace specsync {
namespace {

SimTime T(double s) { return SimTime::FromSeconds(s); }

FaultPlanConfig LossyConfig(std::uint64_t seed = 7) {
  FaultPlanConfig config;
  config.data.drop_probability = 0.2;
  config.data.duplicate_probability = 0.1;
  config.data.delay_probability = 0.15;
  config.control.drop_probability = 0.05;
  config.control.duplicate_probability = 0.05;
  config.seed = seed;
  return config;
}

struct DecisionKey {
  bool drop;
  bool duplicate;
  double extra_delay;
  bool operator==(const DecisionKey&) const = default;
};

DecisionKey Key(const FaultDecision& d) {
  return {d.drop, d.duplicate, d.extra_delay.seconds()};
}

TEST(FaultPlanTest, SameSeedReplaysIdentically) {
  FaultPlan a(LossyConfig());
  FaultPlan b(LossyConfig());
  for (int i = 0; i < 5000; ++i) {
    const LinkClass link = (i % 3 == 0) ? LinkClass::kControl : LinkClass::kData;
    EXPECT_EQ(Key(a.OnMessage(link)), Key(b.OnMessage(link)));
  }
  EXPECT_EQ(a.stats().drops, b.stats().drops);
  EXPECT_EQ(a.stats().duplicates, b.stats().duplicates);
  EXPECT_EQ(a.stats().delays, b.stats().delays);
}

TEST(FaultPlanTest, DifferentSeedsDiffer) {
  FaultPlan a(LossyConfig(7));
  FaultPlan b(LossyConfig(8));
  int differing = 0;
  for (int i = 0; i < 2000; ++i) {
    if (!(Key(a.OnMessage(LinkClass::kData)) ==
          Key(b.OnMessage(LinkClass::kData)))) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlanTest, LinkStreamsAreIndependent) {
  // Interleaving extra control-link traffic must not shift the data link's
  // decision sequence (separate forked streams per link class).
  FaultPlan quiet(LossyConfig());
  FaultPlan noisy(LossyConfig());
  for (int i = 0; i < 1000; ++i) {
    noisy.OnMessage(LinkClass::kControl);
    if (i % 7 == 0) noisy.OnMessage(LinkClass::kControl);
    EXPECT_EQ(Key(quiet.OnMessage(LinkClass::kData)),
              Key(noisy.OnMessage(LinkClass::kData)));
  }
}

TEST(FaultPlanTest, DropRateWithinTolerance) {
  FaultPlanConfig config;
  config.data.drop_probability = 0.2;
  FaultPlan plan(config);
  const int n = 20000;
  for (int i = 0; i < n; ++i) plan.OnMessage(LinkClass::kData);
  const FaultStats stats = plan.stats();
  EXPECT_EQ(stats.messages_seen, static_cast<std::uint64_t>(n));
  const double rate = static_cast<double>(stats.drops) / n;
  EXPECT_NEAR(rate, 0.2, 0.02);
  // Only drops were configured on this link.
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.delays, 0u);
}

TEST(FaultPlanTest, DuplicateAndDelayRatesWithinTolerance) {
  FaultPlanConfig config;
  config.control.duplicate_probability = 0.3;
  config.control.delay_probability = 0.25;
  config.control.delay_mean = Duration::Milliseconds(2.0);
  FaultPlan plan(config);
  const int n = 20000;
  double total_delay = 0.0;
  for (int i = 0; i < n; ++i) {
    total_delay += plan.OnMessage(LinkClass::kControl).extra_delay.seconds();
  }
  const FaultStats stats = plan.stats();
  EXPECT_NEAR(static_cast<double>(stats.duplicates) / n, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(stats.delays) / n, 0.25, 0.02);
  // Mean extra delay over delayed messages ~ delay_mean.
  EXPECT_NEAR(total_delay / static_cast<double>(stats.delays), 2.0e-3, 4e-4);
  EXPECT_EQ(stats.drops, 0u);
}

TEST(FaultPlanTest, DropWinsOverDuplicateAndDelay) {
  FaultPlanConfig config;
  config.data.drop_probability = 1.0;
  config.data.duplicate_probability = 1.0;
  config.data.delay_probability = 1.0;
  FaultPlan plan(config);
  for (int i = 0; i < 100; ++i) {
    const FaultDecision decision = plan.OnMessage(LinkClass::kData);
    EXPECT_TRUE(decision.drop);
    EXPECT_FALSE(decision.duplicate);
    EXPECT_EQ(decision.extra_delay, Duration::Zero());
  }
  EXPECT_EQ(plan.stats().drops, 100u);
  EXPECT_EQ(plan.stats().duplicates, 0u);
}

TEST(FaultPlanTest, DisabledPlanIsInert) {
  FaultPlan plan(FaultPlanConfig{});
  EXPECT_FALSE(plan.enabled());
  for (int i = 0; i < 100; ++i) {
    const FaultDecision decision = plan.OnMessage(LinkClass::kData);
    EXPECT_FALSE(decision.drop);
    EXPECT_FALSE(decision.duplicate);
    EXPECT_EQ(decision.extra_delay, Duration::Zero());
  }
  const FaultStats stats = plan.stats();
  EXPECT_EQ(stats.drops, 0u);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.delays, 0u);
}

TEST(FaultPlanTest, SlowdownFactorHonorsWindows) {
  FaultPlanConfig config;
  config.slowdowns.push_back(SlowdownWindow{0, T(1.0), T(3.0), 2.0});
  config.slowdowns.push_back(SlowdownWindow{0, T(2.0), T(4.0), 3.0});
  config.slowdowns.push_back(SlowdownWindow{1, T(0.0), T(10.0), 5.0});
  FaultPlan plan(config);
  EXPECT_TRUE(plan.enabled());
  EXPECT_DOUBLE_EQ(plan.SlowdownFactor(0, T(0.5)), 1.0);   // before windows
  EXPECT_DOUBLE_EQ(plan.SlowdownFactor(0, T(1.5)), 2.0);   // first only
  EXPECT_DOUBLE_EQ(plan.SlowdownFactor(0, T(2.5)), 6.0);   // overlap compounds
  EXPECT_DOUBLE_EQ(plan.SlowdownFactor(0, T(3.5)), 3.0);   // second only
  EXPECT_DOUBLE_EQ(plan.SlowdownFactor(0, T(4.0)), 1.0);   // end exclusive
  EXPECT_DOUBLE_EQ(plan.SlowdownFactor(1, T(2.5)), 5.0);   // other worker
  EXPECT_DOUBLE_EQ(plan.SlowdownFactor(2, T(2.5)), 1.0);   // unaffected worker
}

TEST(FaultPlanTest, CrashForReturnsFirstEventPerWorker) {
  FaultPlanConfig config;
  config.crashes.push_back(CrashEvent{2, T(5.0), std::nullopt});
  config.crashes.push_back(CrashEvent{0, T(1.0), T(2.0)});
  config.crashes.push_back(CrashEvent{2, T(9.0), std::nullopt});
  FaultPlan plan(config);
  ASSERT_NE(plan.CrashFor(2), nullptr);
  EXPECT_EQ(plan.CrashFor(2)->at, T(5.0));
  ASSERT_NE(plan.CrashFor(0), nullptr);
  ASSERT_TRUE(plan.CrashFor(0)->rejoin.has_value());
  EXPECT_EQ(plan.CrashFor(1), nullptr);
  EXPECT_EQ(plan.crashes().size(), 3u);
}

TEST(FaultPlanTest, LifecycleCountersReflectReports) {
  FaultPlanConfig config;
  config.crashes.push_back(CrashEvent{0, T(1.0), T(2.0)});
  FaultPlan plan(config);
  plan.CountCrash();
  plan.CountRejoin();
  plan.CountCrash();
  EXPECT_EQ(plan.stats().crashes, 2u);
  EXPECT_EQ(plan.stats().rejoins, 1u);
}

TEST(FaultPlanTest, ValidationRejectsBadConfigs) {
  {
    FaultPlanConfig config;
    config.data.drop_probability = 1.5;
    EXPECT_THROW(FaultPlan{config}, CheckError);
  }
  {
    FaultPlanConfig config;
    config.control.delay_probability = 0.1;
    config.control.delay_mean = Duration::Zero();
    EXPECT_THROW(FaultPlan{config}, CheckError);
  }
  {
    FaultPlanConfig config;
    config.slowdowns.push_back(SlowdownWindow{0, T(2.0), T(1.0), 2.0});
    EXPECT_THROW(FaultPlan{config}, CheckError);
  }
  {
    FaultPlanConfig config;
    config.slowdowns.push_back(SlowdownWindow{0, T(1.0), T(2.0), 0.0});
    EXPECT_THROW(FaultPlan{config}, CheckError);
  }
  {
    FaultPlanConfig config;
    config.crashes.push_back(CrashEvent{0, T(5.0), T(4.0)});
    EXPECT_THROW(FaultPlan{config}, CheckError);
  }
  {
    FaultPlanConfig config;
    config.pull_retry_timeout = Duration::Zero();
    EXPECT_THROW(FaultPlan{config}, CheckError);
  }
}

}  // namespace
}  // namespace specsync
