#include "core/push_history.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace specsync {
namespace {

SimTime T(double s) { return SimTime::FromSeconds(s); }

TEST(PushHistoryTest, CountWindowIsHalfOpen) {
  PushHistory history(3);
  history.RecordPush(0, 0, T(1.0));
  history.RecordPush(1, 0, T(2.0));
  history.RecordPush(2, 0, T(3.0));
  // (1, 3]: excludes the push at exactly t=1, includes t=3.
  EXPECT_EQ(history.CountPushesInWindow(T(1.0), T(3.0)), 2u);
  EXPECT_EQ(history.CountPushesInWindow(T(0.0), T(3.0)), 3u);
  EXPECT_EQ(history.CountPushesInWindow(T(3.0), T(9.0)), 0u);
}

TEST(PushHistoryTest, CountExcludesWorker) {
  PushHistory history(2);
  history.RecordPush(0, 0, T(1.0));
  history.RecordPush(1, 0, T(2.0));
  history.RecordPush(0, 1, T(3.0));
  EXPECT_EQ(history.CountPushesInWindow(T(0.0), T(4.0), /*exclude=*/0), 1u);
  EXPECT_EQ(history.CountPushesInWindow(T(0.0), T(4.0), /*exclude=*/1), 2u);
}

TEST(PushHistoryTest, PushesInWindowReturnsRecords) {
  PushHistory history(2);
  history.RecordPush(0, 0, T(1.0));
  history.RecordPush(1, 3, T(2.0));
  const auto records = history.PushesInWindow(T(0.5), T(2.5));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].worker, 1u);
  EXPECT_EQ(records[1].iteration, 3u);
}

TEST(PushHistoryTest, OutOfOrderPushThrows) {
  PushHistory history(2);
  history.RecordPush(0, 0, T(5.0));
  EXPECT_THROW(history.RecordPush(1, 0, T(4.0)), CheckError);
}

TEST(PushHistoryTest, LastPullQueries) {
  PushHistory history(2);
  EXPECT_FALSE(history.LastPull(0).has_value());
  history.RecordPull(0, T(1.0));
  history.RecordPull(0, T(5.0));
  history.RecordPull(1, T(3.0));
  EXPECT_EQ(history.LastPull(0), T(5.0));
  EXPECT_EQ(history.LastPullBefore(0, T(4.0)), T(1.0));
  EXPECT_EQ(history.LastPullBefore(0, T(5.0)), T(5.0));  // at-or-before
  EXPECT_FALSE(history.LastPullBefore(0, T(0.5)).has_value());
}

TEST(PushHistoryTest, MeanIterationSpan) {
  PushHistory history(2);
  history.RecordPush(0, 0, T(1.0));
  history.RecordPush(1, 0, T(1.5));
  history.RecordPush(0, 1, T(3.0));
  history.RecordPush(0, 2, T(6.0));
  const auto span = history.MeanIterationSpan(0, T(0.0), T(10.0));
  ASSERT_TRUE(span.has_value());
  EXPECT_DOUBLE_EQ(span->seconds(), 2.5);  // gaps 2.0 and 3.0
  // Only one push in window -> no span.
  EXPECT_FALSE(history.MeanIterationSpan(1, T(0.0), T(10.0)).has_value());
  // Window that cuts off the first push: single remaining gap.
  const auto partial = history.MeanIterationSpan(0, T(2.0), T(10.0));
  ASSERT_TRUE(partial.has_value());
  EXPECT_DOUBLE_EQ(partial->seconds(), 3.0);
}

TEST(PushHistoryTest, TrimDropsOldRecords) {
  PushHistory history(1);
  history.RecordPush(0, 0, T(1.0));
  history.RecordPush(0, 1, T(10.0));
  history.RecordPull(0, T(1.0));
  history.RecordPull(0, T(10.0));
  history.Trim(T(12.0), Duration::Seconds(5.0));  // cutoff at t=7
  EXPECT_EQ(history.push_count(), 1u);
  EXPECT_EQ(history.pushes()[0].time, T(10.0));
  EXPECT_EQ(history.LastPullBefore(0, T(5.0)), std::nullopt);
  EXPECT_EQ(history.LastPull(0), T(10.0));
}

TEST(PushHistoryTest, InvalidWorkerThrows) {
  PushHistory history(2);
  EXPECT_THROW(history.RecordPush(2, 0, T(1.0)), CheckError);
  EXPECT_THROW(history.RecordPull(5, T(1.0)), CheckError);
  EXPECT_THROW(history.LastPull(2), CheckError);
}

}  // namespace
}  // namespace specsync
