// Tests for the centralized SpecSync scheduler (paper Algorithm 2).
#include "core/scheduler.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace specsync {
namespace {

SimTime T(double s) { return SimTime::FromSeconds(s); }
Duration D(double s) { return Duration::Seconds(s); }

SchedulerConfig Config(std::size_t m, Duration abort_time, double abort_rate) {
  SchedulerConfig config;
  config.num_workers = m;
  config.initial_params.abort_time = abort_time;
  config.initial_params.abort_rate = abort_rate;
  config.default_span = D(10.0);
  return config;
}

// Fixed policy that keeps whatever initial params were set.
std::unique_ptr<SpeculationPolicy> Keep(Duration abort_time,
                                        double abort_rate) {
  SpeculationParams params;
  params.abort_time = abort_time;
  params.abort_rate = abort_rate;
  return std::make_unique<FixedSpeculationPolicy>(params);
}

TEST(SchedulerTest, NotifyRequestsCheckAfterAbortTime) {
  SpecSyncScheduler scheduler(Config(4, D(2.0), 0.5), Keep(D(2.0), 0.5));
  const auto request = scheduler.HandleNotify(0, 0, T(10.0));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->delay, D(2.0));
}

TEST(SchedulerTest, NoCheckWhenSpeculationDisabled) {
  SpecSyncScheduler scheduler(Config(4, Duration::Zero(), 0.0),
                              std::make_unique<DisabledSpeculationPolicy>());
  EXPECT_FALSE(scheduler.HandleNotify(0, 0, T(1.0)).has_value());
}

TEST(SchedulerTest, ResyncIssuedWhenEnoughPushesInWindow) {
  // m=4, rate=0.5: threshold = 2 pushes from others within the window.
  SpecSyncScheduler scheduler(Config(4, D(2.0), 0.5), Keep(D(2.0), 0.5));
  const auto request = scheduler.HandleNotify(0, 0, T(0.0));
  ASSERT_TRUE(request.has_value());
  scheduler.HandleNotify(1, 0, T(0.5));
  scheduler.HandleNotify(2, 0, T(1.0));
  EXPECT_TRUE(scheduler.HandleCheckTimer(0, request->token, T(2.0)));
  EXPECT_EQ(scheduler.stats().resyncs_issued, 1u);
}

TEST(SchedulerTest, NoResyncBelowThreshold) {
  SpecSyncScheduler scheduler(Config(4, D(2.0), 0.5), Keep(D(2.0), 0.5));
  const auto request = scheduler.HandleNotify(0, 0, T(0.0));
  scheduler.HandleNotify(1, 0, T(0.5));  // only one push from others
  EXPECT_FALSE(scheduler.HandleCheckTimer(0, request->token, T(2.0)));
  EXPECT_EQ(scheduler.stats().resyncs_issued, 0u);
  EXPECT_EQ(scheduler.stats().checks_performed, 1u);
}

TEST(SchedulerTest, OwnPushesDoNotCount) {
  // Worker 0's window must not count worker 0's own (hypothetical) pushes.
  SpecSyncScheduler scheduler(Config(2, D(5.0), 0.5), Keep(D(5.0), 0.5));
  const auto request = scheduler.HandleNotify(0, 0, T(0.0));
  // Threshold = 1 push from others. Worker 0 pushes again inside the window
  // (possible if the window outlives the next iteration).
  scheduler.HandleNotify(0, 1, T(1.0));
  EXPECT_FALSE(scheduler.HandleCheckTimer(0, request->token, T(5.0)));
}

TEST(SchedulerTest, StaleTokenSkipped) {
  SpecSyncScheduler scheduler(Config(4, D(2.0), 0.25), Keep(D(2.0), 0.25));
  const auto first = scheduler.HandleNotify(0, 0, T(0.0));
  const auto second = scheduler.HandleNotify(0, 1, T(1.0));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  scheduler.HandleNotify(1, 0, T(1.5));
  scheduler.HandleNotify(2, 0, T(1.6));
  // The first window was superseded by the second notify.
  EXPECT_FALSE(scheduler.HandleCheckTimer(0, first->token, T(2.0)));
  EXPECT_EQ(scheduler.stats().stale_checks_skipped, 1u);
  // The second window is live and sees both pushes.
  EXPECT_TRUE(scheduler.HandleCheckTimer(0, second->token, T(3.0)));
}

TEST(SchedulerTest, CheckConsumesWindow) {
  SpecSyncScheduler scheduler(Config(4, D(2.0), 0.25), Keep(D(2.0), 0.25));
  const auto request = scheduler.HandleNotify(0, 0, T(0.0));
  scheduler.HandleNotify(1, 0, T(0.5));
  EXPECT_TRUE(scheduler.HandleCheckTimer(0, request->token, T(2.0)));
  // Firing the same token twice must not re-issue.
  EXPECT_FALSE(scheduler.HandleCheckTimer(0, request->token, T(2.1)));
}

TEST(SchedulerTest, EpochEndsWhenAllWorkersPushed) {
  SpecSyncScheduler scheduler(Config(3, D(1.0), 0.5), Keep(D(1.0), 0.5));
  EXPECT_EQ(scheduler.epoch(), 0u);
  scheduler.HandleNotify(0, 0, T(1.0));
  scheduler.HandleNotify(1, 0, T(2.0));
  EXPECT_EQ(scheduler.epoch(), 0u);
  scheduler.HandleNotify(2, 0, T(3.0));
  EXPECT_EQ(scheduler.epoch(), 1u);
  EXPECT_EQ(scheduler.stats().retunes, 1u);
  // Second epoch needs all three again.
  scheduler.HandleNotify(0, 1, T(4.0));
  scheduler.HandleNotify(0, 2, T(5.0));
  EXPECT_EQ(scheduler.epoch(), 1u);
  scheduler.HandleNotify(1, 1, T(6.0));
  scheduler.HandleNotify(2, 1, T(7.0));
  EXPECT_EQ(scheduler.epoch(), 2u);
}

// Policy that records the inputs it was handed.
class RecordingPolicy final : public SpeculationPolicy {
 public:
  explicit RecordingPolicy(std::vector<TuningInputs>* sink) : sink_(sink) {}
  std::string name() const override { return "recording"; }
  SpeculationParams OnEpochEnd(const TuningInputs& inputs) override {
    sink_->push_back(inputs);
    return {};
  }

 private:
  std::vector<TuningInputs>* sink_;
};

TEST(SchedulerTest, TuningInputsCoverFinishedEpoch) {
  std::vector<TuningInputs> seen;
  SchedulerConfig config = Config(2, D(1.0), 0.5);
  SpecSyncScheduler scheduler(config,
                              std::make_unique<RecordingPolicy>(&seen));
  scheduler.HandlePull(0, T(0.1));
  scheduler.HandlePull(1, T(0.2));
  scheduler.HandleNotify(0, 0, T(5.0));
  scheduler.HandlePull(0, T(5.1));
  scheduler.HandleNotify(1, 0, T(6.0));  // epoch 0 ends here
  ASSERT_EQ(seen.size(), 1u);
  const TuningInputs& inputs = seen[0];
  EXPECT_EQ(inputs.num_workers, 2u);
  EXPECT_EQ(inputs.finished_epoch, 0u);
  EXPECT_EQ(inputs.epoch_end, T(6.0));
  ASSERT_EQ(inputs.pushes.size(), 2u);
  EXPECT_EQ(inputs.pushes[0].second, 0u);
  ASSERT_TRUE(inputs.last_pull[0].has_value());
  EXPECT_EQ(*inputs.last_pull[0], T(5.1));
  EXPECT_EQ(inputs.iteration_span.size(), 2u);
}

TEST(SchedulerTest, SpanEstimateTracksPushGaps) {
  SchedulerConfig config = Config(2, Duration::Zero(), 0.0);
  config.span_ewma_alpha = 1.0;  // use latest gap directly
  config.default_span = D(99.0);
  SpecSyncScheduler scheduler(config,
                              std::make_unique<DisabledSpeculationPolicy>());
  scheduler.HandleNotify(0, 0, T(10.0));
  EXPECT_DOUBLE_EQ(scheduler.iteration_spans()[0].seconds(), 99.0);
  scheduler.HandleNotify(0, 1, T(14.0));
  EXPECT_DOUBLE_EQ(scheduler.iteration_spans()[0].seconds(), 4.0);
  scheduler.HandleNotify(0, 2, T(20.0));
  EXPECT_DOUBLE_EQ(scheduler.iteration_spans()[0].seconds(), 6.0);
}

TEST(SchedulerTest, StatsCountNotifies) {
  SpecSyncScheduler scheduler(Config(2, D(1.0), 0.5), Keep(D(1.0), 0.5));
  scheduler.HandleNotify(0, 0, T(1.0));
  scheduler.HandleNotify(1, 0, T(2.0));
  EXPECT_EQ(scheduler.stats().notifies_received, 2u);
}

TEST(SchedulerTest, InvalidConfigThrows) {
  SchedulerConfig bad;
  bad.num_workers = 0;
  EXPECT_THROW(
      SpecSyncScheduler(bad, std::make_unique<DisabledSpeculationPolicy>()),
      CheckError);
  SchedulerConfig no_policy = Config(2, D(1.0), 0.5);
  EXPECT_THROW(SpecSyncScheduler(no_policy, nullptr), CheckError);
}

}  // namespace
}  // namespace specsync
