// Fault-tolerance tests for the SpecSync scheduler: duplicated / reordered /
// lost notifies, replayed and late check timers, and worker crash/rejoin.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/push_history.h"
#include "core/scheduler.h"

namespace specsync {
namespace {

SimTime T(double s) { return SimTime::FromSeconds(s); }
Duration D(double s) { return Duration::Seconds(s); }

SchedulerConfig Config(std::size_t m, Duration abort_time, double abort_rate) {
  SchedulerConfig config;
  config.num_workers = m;
  config.initial_params.abort_time = abort_time;
  config.initial_params.abort_rate = abort_rate;
  config.default_span = D(10.0);
  return config;
}

std::unique_ptr<SpeculationPolicy> Keep(Duration abort_time,
                                        double abort_rate) {
  SpeculationParams params;
  params.abort_time = abort_time;
  params.abort_rate = abort_rate;
  return std::make_unique<FixedSpeculationPolicy>(params);
}

// --- duplicated / reordered notifies -----------------------------------------

TEST(SchedulerFaultTest, DuplicateNotifyIsIgnored) {
  SpecSyncScheduler scheduler(Config(4, D(2.0), 0.5), Keep(D(2.0), 0.5));
  const auto first = scheduler.HandleNotify(0, 0, T(1.0));
  ASSERT_TRUE(first.has_value());
  // The network replays the same notify a bit later.
  const auto replay = scheduler.HandleNotify(0, 0, T(1.2));
  EXPECT_FALSE(replay.has_value());
  EXPECT_EQ(scheduler.stats().duplicate_notifies, 1u);
  // The ledger holds a single record; the armed window is untouched (the
  // original token still fires as a normal, non-stale check).
  EXPECT_EQ(scheduler.history().push_count(), 1u);
  scheduler.HandleCheckTimer(0, first->token, T(3.0));
  EXPECT_EQ(scheduler.stats().checks_performed, 1u);
  EXPECT_EQ(scheduler.stats().stale_checks_skipped, 0u);
}

TEST(SchedulerFaultTest, ReorderedNotifyIsTreatedAsDuplicate) {
  SpecSyncScheduler scheduler(Config(4, D(2.0), 0.5), Keep(D(2.0), 0.5));
  // Iteration 1's notify overtakes iteration 0's on a faulty link.
  EXPECT_TRUE(scheduler.HandleNotify(0, 1, T(1.0)).has_value());
  EXPECT_FALSE(scheduler.HandleNotify(0, 0, T(1.5)).has_value());
  EXPECT_EQ(scheduler.stats().duplicate_notifies, 1u);
  EXPECT_EQ(scheduler.history().push_count(), 1u);
  EXPECT_EQ(scheduler.history().LastIteration(0), 1u);
}

TEST(SchedulerFaultTest, DuplicateNotifyDoesNotHelpFinishEpoch) {
  SpecSyncScheduler scheduler(Config(2, D(2.0), 0.5), Keep(D(2.0), 0.5));
  scheduler.HandleNotify(0, 0, T(1.0));
  scheduler.HandleNotify(0, 0, T(1.1));  // replay, not a push by worker 1
  EXPECT_EQ(scheduler.epoch(), 0u);
  scheduler.HandleNotify(1, 0, T(2.0));
  EXPECT_EQ(scheduler.epoch(), 1u);
}

// --- replayed / late check timers --------------------------------------------

TEST(SchedulerFaultTest, ReplayedCheckTokenIsIdempotent) {
  SpecSyncScheduler scheduler(Config(4, D(2.0), 0.5), Keep(D(2.0), 0.5));
  const auto request = scheduler.HandleNotify(0, 0, T(0.0));
  ASSERT_TRUE(request.has_value());
  scheduler.HandleNotify(1, 0, T(0.5));
  scheduler.HandleNotify(2, 0, T(1.0));
  EXPECT_TRUE(scheduler.HandleCheckTimer(0, request->token, T(2.0)));
  // A duplicated timer message replays the same token: counted no-op.
  EXPECT_FALSE(scheduler.HandleCheckTimer(0, request->token, T(2.1)));
  EXPECT_FALSE(scheduler.HandleCheckTimer(0, request->token, T(2.2)));
  EXPECT_EQ(scheduler.stats().checks_performed, 1u);
  EXPECT_EQ(scheduler.stats().resyncs_issued, 1u);
  EXPECT_EQ(scheduler.stats().stale_checks_skipped, 2u);
}

TEST(SchedulerFaultTest, LateCheckClampsWindowToDeadline) {
  // Window armed at t=0 with abort_time=2: deadline t=2. The timer fires at
  // t=5 (way past the slack); pushes landing in (2, 5] must not count.
  SpecSyncScheduler scheduler(Config(4, D(2.0), 0.5), Keep(D(2.0), 0.5));
  const auto request = scheduler.HandleNotify(0, 0, T(0.0));
  ASSERT_TRUE(request.has_value());
  scheduler.HandleNotify(1, 0, T(3.0));
  scheduler.HandleNotify(2, 0, T(4.0));
  EXPECT_FALSE(scheduler.HandleCheckTimer(0, request->token, T(5.0)));
  EXPECT_EQ(scheduler.stats().resyncs_issued, 0u);
  EXPECT_EQ(scheduler.stats().late_checks, 1u);
}

TEST(SchedulerFaultTest, LateCheckStillCountsPushesInsideWindow) {
  SpecSyncScheduler scheduler(Config(4, D(2.0), 0.5), Keep(D(2.0), 0.5));
  const auto request = scheduler.HandleNotify(0, 0, T(0.0));
  ASSERT_TRUE(request.has_value());
  scheduler.HandleNotify(1, 0, T(0.5));
  scheduler.HandleNotify(2, 0, T(1.0));
  // Fires late, but the in-window pushes already justify the re-sync.
  EXPECT_TRUE(scheduler.HandleCheckTimer(0, request->token, T(5.0)));
  EXPECT_EQ(scheduler.stats().late_checks, 1u);
}

TEST(SchedulerFaultTest, SlackToleratesJitteryTimers) {
  SchedulerConfig config = Config(4, D(2.0), 0.5);
  config.late_check_slack = Duration::Milliseconds(10.0);
  SpecSyncScheduler scheduler(std::move(config), Keep(D(2.0), 0.5));
  const auto request = scheduler.HandleNotify(0, 0, T(0.0));
  ASSERT_TRUE(request.has_value());
  // 5 ms past the deadline: within slack, not counted as late.
  scheduler.HandleCheckTimer(0, request->token, T(2.005));
  EXPECT_EQ(scheduler.stats().late_checks, 0u);
  EXPECT_EQ(scheduler.stats().checks_performed, 1u);
}

// --- worker departure / rejoin -----------------------------------------------

TEST(SchedulerFaultTest, DepartureUnblocksEpoch) {
  SpecSyncScheduler scheduler(Config(3, D(2.0), 0.5), Keep(D(2.0), 0.5));
  scheduler.HandleNotify(0, 0, T(1.0));
  scheduler.HandleNotify(1, 0, T(2.0));
  EXPECT_EQ(scheduler.epoch(), 0u);  // waiting on worker 2
  scheduler.OnWorkerDown(2, T(3.0));
  EXPECT_EQ(scheduler.epoch(), 1u);  // departed holdout is excused
  EXPECT_EQ(scheduler.stats().lost_worker_epochs_unblocked, 1u);
  EXPECT_EQ(scheduler.stats().worker_departures, 1u);
  EXPECT_FALSE(scheduler.active_workers()[2]);
}

TEST(SchedulerFaultTest, DepartureCancelsPendingWindow) {
  SpecSyncScheduler scheduler(Config(4, D(2.0), 0.5), Keep(D(2.0), 0.5));
  const auto request = scheduler.HandleNotify(0, 0, T(0.0));
  ASSERT_TRUE(request.has_value());
  scheduler.HandleNotify(1, 0, T(0.5));
  scheduler.HandleNotify(2, 0, T(1.0));
  scheduler.OnWorkerDown(0, T(1.5));
  // The crashed worker's check fires (its timer was already queued): it must
  // not issue a re-sync to a dead worker.
  EXPECT_FALSE(scheduler.HandleCheckTimer(0, request->token, T(2.0)));
  EXPECT_EQ(scheduler.stats().stale_checks_skipped, 1u);
  EXPECT_EQ(scheduler.stats().resyncs_issued, 0u);
}

TEST(SchedulerFaultTest, NotifyFromDepartedWorkerArmsNoWindow) {
  SpecSyncScheduler scheduler(Config(3, D(2.0), 0.5), Keep(D(2.0), 0.5));
  scheduler.OnWorkerDown(1, T(0.5));
  // An in-flight notify from the departed worker still lands: the push is
  // real (it reached the servers) but no speculation window is armed.
  const auto request = scheduler.HandleNotify(1, 0, T(1.0));
  EXPECT_FALSE(request.has_value());
  EXPECT_EQ(scheduler.history().push_count(), 1u);
}

TEST(SchedulerFaultTest, RejoinedWorkerRequiredForNextEpoch) {
  SpecSyncScheduler scheduler(Config(3, D(2.0), 0.5), Keep(D(2.0), 0.5));
  scheduler.HandleNotify(0, 0, T(1.0));
  scheduler.HandleNotify(1, 0, T(2.0));
  scheduler.OnWorkerDown(2, T(3.0));
  ASSERT_EQ(scheduler.epoch(), 1u);
  scheduler.OnWorkerUp(2, T(4.0));
  EXPECT_EQ(scheduler.stats().worker_rejoins, 1u);
  EXPECT_TRUE(scheduler.active_workers()[2]);
  // The rejoined worker is a full member again: the next epoch waits for it.
  scheduler.HandleNotify(0, 1, T(5.0));
  scheduler.HandleNotify(1, 1, T(6.0));
  EXPECT_EQ(scheduler.epoch(), 1u);
  scheduler.HandleNotify(2, 0, T(7.0));
  EXPECT_EQ(scheduler.epoch(), 2u);
}

TEST(SchedulerFaultTest, RejoinResetsSpanAnchor) {
  SchedulerConfig config = Config(2, D(2.0), 0.5);
  config.default_span = D(1.0);
  config.span_ewma_alpha = 1.0;  // span = latest gap, no smoothing
  SpecSyncScheduler scheduler(std::move(config), Keep(D(2.0), 0.5));
  scheduler.HandleNotify(0, 0, T(1.0));
  scheduler.HandleNotify(0, 1, T(2.0));
  EXPECT_EQ(scheduler.iteration_spans()[0], D(1.0));
  scheduler.OnWorkerDown(0, T(2.5));
  scheduler.OnWorkerUp(0, T(100.0));
  // First push after rejoin: the 98.5 s dead gap must NOT become the span.
  scheduler.HandleNotify(0, 2, T(101.0));
  EXPECT_EQ(scheduler.iteration_spans()[0], D(1.0));
  // The next gap after that counts again.
  scheduler.HandleNotify(0, 3, T(103.0));
  EXPECT_EQ(scheduler.iteration_spans()[0], D(2.0));
}

TEST(SchedulerFaultTest, ThresholdTracksActiveWorkerCount) {
  // m=4, rate=0.6: threshold 2.4 with everyone up (needs 3 pushes from
  // others), 1.8 after one departure (2 pushes suffice).
  {
    SpecSyncScheduler scheduler(Config(4, D(2.0), 0.6), Keep(D(2.0), 0.6));
    const auto request = scheduler.HandleNotify(0, 0, T(0.0));
    ASSERT_TRUE(request.has_value());
    scheduler.HandleNotify(1, 0, T(0.5));
    scheduler.HandleNotify(2, 0, T(1.0));
    EXPECT_FALSE(scheduler.HandleCheckTimer(0, request->token, T(2.0)));
  }
  {
    SpecSyncScheduler scheduler(Config(4, D(2.0), 0.6), Keep(D(2.0), 0.6));
    const auto request = scheduler.HandleNotify(0, 0, T(0.0));
    ASSERT_TRUE(request.has_value());
    scheduler.HandleNotify(1, 0, T(0.5));
    scheduler.HandleNotify(2, 0, T(1.0));
    scheduler.OnWorkerDown(3, T(1.5));
    EXPECT_TRUE(scheduler.HandleCheckTimer(0, request->token, T(2.0)));
  }
}

TEST(SchedulerFaultTest, RepeatedDownUpEventsAreIdempotent) {
  SpecSyncScheduler scheduler(Config(3, D(2.0), 0.5), Keep(D(2.0), 0.5));
  scheduler.OnWorkerDown(1, T(1.0));
  scheduler.OnWorkerDown(1, T(1.1));  // replayed failure detection
  EXPECT_EQ(scheduler.stats().worker_departures, 1u);
  scheduler.OnWorkerUp(1, T(2.0));
  scheduler.OnWorkerUp(1, T(2.1));
  EXPECT_EQ(scheduler.stats().worker_rejoins, 1u);
}

// --- property-style chaos ----------------------------------------------------

// A seeded storm of duplicated/reordered notifies, replayed and stray check
// tokens, and membership flaps must never (a) throw, (b) record a push
// twice, or (c) leave the scheduler unable to finish epochs once the
// cluster heals.
TEST(SchedulerFaultTest, ChaosThenRecovery) {
  std::mt19937 gen(0xC4405u);
  const std::size_t m = 4;
  SpecSyncScheduler scheduler(Config(m, D(1.0), 0.5), Keep(D(1.0), 0.5));
  double now = 0.0;
  std::vector<IterationId> next_iter(m, 0);
  std::vector<bool> up(m, true);
  struct Armed {
    WorkerId worker;
    std::uint64_t token;
  };
  std::vector<Armed> armed;

  for (int step = 0; step < 4000; ++step) {
    now += 0.01;
    const WorkerId w = gen() % m;
    const int action = static_cast<int>(gen() % 10);
    if (action < 6) {
      // Deliver a notify: usually the next fresh iteration, sometimes a
      // replayed older one; sometimes the delivery itself is duplicated.
      IterationId iteration = next_iter[w];
      if (next_iter[w] > 0 && gen() % 5 == 0) {
        iteration = next_iter[w] - 1;  // replay
      } else {
        ++next_iter[w];
      }
      auto request = scheduler.HandleNotify(w, iteration, T(now));
      if (request.has_value()) armed.push_back({w, request->token});
      if (gen() % 4 == 0) {
        scheduler.HandleNotify(w, iteration, T(now + 0.001));
      }
    } else if (action < 9 && !armed.empty()) {
      // Fire a (possibly superseded) check token, sometimes twice.
      const Armed check = armed[gen() % armed.size()];
      scheduler.HandleCheckTimer(check.worker, check.token, T(now));
      if (gen() % 3 == 0) {
        scheduler.HandleCheckTimer(check.worker, check.token, T(now + 0.001));
      }
    } else {
      if (up[w]) {
        scheduler.OnWorkerDown(w, T(now));
      } else {
        scheduler.OnWorkerUp(w, T(now));
      }
      up[w] = !up[w];
    }
  }

  // Every fresh iteration was accepted exactly once; every replay was
  // rejected. (Trim only drops old records, so count via the stats.)
  std::uint64_t fresh = 0;
  for (WorkerId w = 0; w < m; ++w) {
    fresh += next_iter[w];
    if (next_iter[w] > 0) {
      EXPECT_EQ(scheduler.history().LastIteration(w), next_iter[w] - 1);
    }
  }
  const SchedulerStats& stats = scheduler.stats();
  EXPECT_EQ(stats.notifies_received - stats.duplicate_notifies, fresh);
  EXPECT_GT(stats.duplicate_notifies, 0u);
  EXPECT_GT(stats.stale_checks_skipped, 0u);

  // Heal the cluster: epochs must finish again, one per all-push round.
  for (WorkerId w = 0; w < m; ++w) {
    if (!up[w]) scheduler.OnWorkerUp(w, T(now));
  }
  const EpochId healed_epoch = scheduler.epoch();
  for (int round = 0; round < 3; ++round) {
    for (WorkerId w = 0; w < m; ++w) {
      now += 0.01;
      scheduler.HandleNotify(w, next_iter[w]++, T(now));
    }
  }
  EXPECT_GE(scheduler.epoch(), healed_epoch + 3);
}

// --- PushHistory::LastIteration ----------------------------------------------

TEST(PushHistoryFaultTest, LastIterationTracksMaxPerWorker) {
  PushHistory history(2);
  EXPECT_EQ(history.LastIteration(0), std::nullopt);
  history.RecordPush(0, 0, T(1.0));
  history.RecordPush(1, 5, T(2.0));
  history.RecordPush(0, 1, T(3.0));
  EXPECT_EQ(history.LastIteration(0), 1u);
  EXPECT_EQ(history.LastIteration(1), 5u);
}

TEST(PushHistoryFaultTest, LastIterationSurvivesTrim) {
  PushHistory history(1);
  history.RecordPush(0, 0, T(1.0));
  history.RecordPush(0, 1, T(2.0));
  history.Trim(T(100.0), Duration::Seconds(1.0));
  EXPECT_EQ(history.push_count(), 0u);
  EXPECT_EQ(history.LastIteration(0), 1u);
}

}  // namespace
}  // namespace specsync
