// Tests for the SpecSync-Adaptive tuner (paper Algorithm 1).
#include "core/adaptive_tuner.h"

#include <gtest/gtest.h>

#include <cmath>

namespace specsync {
namespace {

SimTime T(double s) { return SimTime::FromSeconds(s); }
Duration D(double s) { return Duration::Seconds(s); }

// A hand-built epoch: 4 workers with span 10s; worker 0 pulled at t=0 and a
// burst of 3 pushes by others lands at t=1.
TuningInputs BurstyInputs() {
  TuningInputs inputs;
  inputs.num_workers = 4;
  inputs.finished_epoch = 1;
  inputs.epoch_begin = T(0.0);
  inputs.epoch_end = T(20.0);
  inputs.pushes = {
      {T(1.0), 1}, {T(1.01), 2}, {T(1.02), 3},   // burst after worker 0's pull
      {T(9.0), 1}, {T(9.5), 2},  {T(10.0), 3},  {T(10.5), 0},
  };
  inputs.last_pull = {T(0.0), T(8.0), T(8.5), T(9.0)};
  inputs.iteration_span = {D(10.0), D(10.0), D(10.0), D(10.0)};
  return inputs;
}

TEST(AdaptiveTunerTest, GainCountsOnlyOthersPushesInWindow) {
  const TuningInputs inputs = BurstyInputs();
  // Delta = 1.02: worker 0 uncovers the 3-push burst; workers 1..3 uncover
  // pushes within (pull, pull+1.02].
  // worker1 (pull 8.0): pushes in (8, 9.02] by others: t=9.0 is its own -> 0.
  // worker2 (pull 8.5): (8.5, 9.52]: t=9.0 (w1), t=9.5 is own -> 1.
  // worker3 (pull 9.0): (9.0, 10.02]: t=9.5 (w2), t=10.0 own -> 1.
  // Loss per worker: 1.02/10 * 3 = 0.306; total 4*0.306 = 1.224.
  const double f = AdaptiveTuner::EstimateImprovement(inputs, D(1.02));
  EXPECT_NEAR(f, (3.0 + 0.0 + 1.0 + 1.0) - 4.0 * 0.306, 1e-9);
}

TEST(AdaptiveTunerTest, LossWeightScalesLinearTerm) {
  const TuningInputs inputs = BurstyInputs();
  const double full = AdaptiveTuner::EstimateImprovement(inputs, D(1.02), 1.0);
  const double none = AdaptiveTuner::EstimateImprovement(inputs, D(1.02), 0.0);
  EXPECT_NEAR(none - full, 4.0 * 0.306, 1e-9);
}

TEST(AdaptiveTunerTest, CandidatesArePairwiseDifferences) {
  TuningInputs inputs;
  inputs.num_workers = 2;
  inputs.pushes = {{T(1.0), 0}, {T(2.0), 1}, {T(4.0), 0}};
  inputs.last_pull = {T(0.0), T(0.0)};
  inputs.iteration_span = {D(5.0), D(5.0)};
  const auto candidates =
      AdaptiveTuner::CandidateDeltas(inputs, D(100.0), 0);
  // Differences: 1, 3, 2 -> sorted {1, 2, 3}.
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_DOUBLE_EQ(candidates[0].seconds(), 1.0);
  EXPECT_DOUBLE_EQ(candidates[1].seconds(), 2.0);
  EXPECT_DOUBLE_EQ(candidates[2].seconds(), 3.0);
}

TEST(AdaptiveTunerTest, CandidatesRespectMaxDelta) {
  TuningInputs inputs;
  inputs.num_workers = 2;
  inputs.pushes = {{T(1.0), 0}, {T(2.0), 1}, {T(4.0), 0}};
  inputs.last_pull = {T(0.0), T(0.0)};
  inputs.iteration_span = {D(5.0), D(5.0)};
  const auto candidates = AdaptiveTuner::CandidateDeltas(inputs, D(2.5), 0);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_DOUBLE_EQ(candidates.back().seconds(), 2.0);
}

TEST(AdaptiveTunerTest, CandidateCapKeepsRange) {
  TuningInputs inputs;
  inputs.num_workers = 2;
  for (int i = 0; i < 60; ++i) {
    inputs.pushes.emplace_back(T(0.1 * i), i % 2);
  }
  inputs.last_pull = {T(0.0), T(0.0)};
  inputs.iteration_span = {D(5.0), D(5.0)};
  const auto capped = AdaptiveTuner::CandidateDeltas(inputs, D(100.0), 10);
  EXPECT_EQ(capped.size(), 10u);
  EXPECT_TRUE(std::is_sorted(capped.begin(), capped.end()));
}

TEST(AdaptiveTunerTest, PicksWindowCoveringBurst) {
  AdaptiveTuner tuner;
  const SpeculationParams params = tuner.OnEpochEnd(BurstyInputs());
  ASSERT_TRUE(params.enabled());
  // The burst at offset ~1.0 after worker 0's pull dominates the objective;
  // the chosen window must cover it but not extend far beyond (the loss term
  // penalizes longer windows).
  EXPECT_GE(params.abort_time.seconds(), 1.0);
  EXPECT_LE(params.abort_time.seconds(), 10.0);
  // Algorithm 1 line 7: rate = delta*(m-1)/(T*m).
  EXPECT_NEAR(params.abort_rate,
              params.abort_time.seconds() * 3.0 / (10.0 * 4.0), 1e-12);
}

TEST(AdaptiveTunerTest, DisabledWhenNoPositiveImprovement) {
  // Uniform arrivals with no excess: gain ~= loss, noise-free construction
  // where every candidate window's gain is strictly below the loss line.
  TuningInputs inputs;
  inputs.num_workers = 3;
  inputs.epoch_begin = T(0.0);
  inputs.epoch_end = T(30.0);
  // One push by each worker, far apart; pulls just after each worker's push.
  inputs.pushes = {{T(1.0), 0}, {T(11.0), 1}, {T(21.0), 2}};
  inputs.last_pull = {T(1.1), T(11.1), T(21.1)};
  inputs.iteration_span = {D(1.0), D(1.0), D(1.0)};  // harsh loss slope
  AdaptiveTuner tuner;
  const SpeculationParams params = tuner.OnEpochEnd(inputs);
  EXPECT_FALSE(params.enabled());
}

TEST(AdaptiveTunerTest, SingleWorkerDisabled) {
  TuningInputs inputs;
  inputs.num_workers = 1;
  inputs.pushes = {{T(1.0), 0}, {T(2.0), 0}};
  inputs.last_pull = {T(0.0)};
  inputs.iteration_span = {D(1.0)};
  AdaptiveTuner tuner;
  EXPECT_FALSE(tuner.OnEpochEnd(inputs).enabled());
}

TEST(AdaptiveTunerTest, FewerThanTwoPushesDisabled) {
  TuningInputs inputs;
  inputs.num_workers = 2;
  inputs.pushes = {{T(1.0), 0}};
  inputs.last_pull = {T(0.0), T(0.0)};
  inputs.iteration_span = {D(1.0), D(1.0)};
  AdaptiveTuner tuner;
  EXPECT_FALSE(tuner.OnEpochEnd(inputs).enabled());
}

TEST(AdaptiveTunerTest, PerWorkerRates) {
  AdaptiveTunerConfig config;
  config.per_worker_rate = true;
  AdaptiveTuner tuner(config);
  TuningInputs inputs = BurstyInputs();
  inputs.iteration_span = {D(5.0), D(10.0), D(10.0), D(20.0)};
  const SpeculationParams params = tuner.OnEpochEnd(inputs);
  ASSERT_TRUE(params.enabled());
  ASSERT_EQ(params.per_worker_rate.size(), 4u);
  // Gamma_i = delta*(m-1)/(T_i*m): slower workers get lower thresholds.
  EXPECT_GT(params.per_worker_rate[0], params.per_worker_rate[3]);
  EXPECT_NEAR(params.RateFor(0),
              params.abort_time.seconds() * 3.0 / (5.0 * 4.0), 1e-12);
  // RateFor falls back to the pooled rate for out-of-range workers.
  EXPECT_DOUBLE_EQ(params.RateFor(100), params.abort_rate);
}

TEST(AdaptiveTunerTest, MeanSpan) {
  TuningInputs inputs;
  inputs.num_workers = 2;
  inputs.iteration_span = {D(2.0), D(4.0)};
  EXPECT_DOUBLE_EQ(MeanSpan(inputs).seconds(), 3.0);
}

TEST(SpeculationParamsTest, EnabledSemantics) {
  SpeculationParams params;
  EXPECT_FALSE(params.enabled());
  params.abort_time = D(0.5);
  EXPECT_TRUE(params.enabled());
}

TEST(FixedPolicyTest, ReturnsSameParamsEveryEpoch) {
  SpeculationParams fixed;
  fixed.abort_time = D(2.0);
  fixed.abort_rate = 0.25;
  FixedSpeculationPolicy policy(fixed);
  const SpeculationParams out = policy.OnEpochEnd(BurstyInputs());
  EXPECT_EQ(out.abort_time, fixed.abort_time);
  EXPECT_EQ(out.abort_rate, fixed.abort_rate);
}

TEST(DisabledPolicyTest, AlwaysDisabled) {
  DisabledSpeculationPolicy policy;
  EXPECT_FALSE(policy.OnEpochEnd(BurstyInputs()).enabled());
}

}  // namespace
}  // namespace specsync
