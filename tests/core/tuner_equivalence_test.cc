// Tuner replay equivalence battery (DESIGN.md §12).
//
// The Adaptive tuner ships two Algorithm-1 replay engines: the retained full
// replay (EstimateImprovement per candidate — the executable specification)
// and the incremental sweep (sorted candidate thresholds, per-push binary
// search, saturation pruning). Their contract is bit-identity: the same
// F̃ value for every candidate, the same per-epoch ABORT_TIME/ABORT_RATE
// decision, and the same audit retune records, down to the last floating-
// point bit.
//
// Timelines are generated on a coarse binary grid (multiples of 1/8 s, all
// exactly representable) so window edges frequently land *exactly* on push
// times — the `time <= pull + Δ` boundary where an off-by-one in the
// incremental bucketing would first diverge. On mismatch the harness shrinks
// the push timeline to a 1-minimal counterexample and prints it.
//
// A planted-bug check rounds out the battery: a deliberately wrong prune
// (dropping the saturation candidate itself) must change a decision on a
// crafted timeline — proof the equivalence tests have teeth.
//
// Timelines are seeded; set SPECSYNC_PROPERTY_SEED to reproduce or explore.

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/sim_time.h"
#include "core/adaptive_tuner.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "obs/obs.h"
#include "trace/trace.h"

namespace specsync {
namespace {

std::uint64_t BaseSeed() {
  if (const char* env = std::getenv("SPECSYNC_PROPERTY_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260808;
}

// --- timelines ---------------------------------------------------------------

constexpr double kGrid = 0.125;  // exactly representable; boundary-friendly

TuningInputs GenerateInputs(std::uint64_t seed) {
  Rng rng(seed);
  TuningInputs inputs;
  inputs.num_workers = 2 + rng.Index(5);  // 2..6
  inputs.finished_epoch = 1;
  inputs.iteration_span.resize(inputs.num_workers);
  inputs.last_pull.resize(inputs.num_workers);
  for (std::size_t i = 0; i < inputs.num_workers; ++i) {
    inputs.iteration_span[i] =
        Duration::Seconds(kGrid * static_cast<double>(2 + rng.Index(30)));
    if (rng.Index(8) != 0) {  // 1-in-8 workers saw no pull this epoch
      inputs.last_pull[i] = SimTime::FromSeconds(
          kGrid * static_cast<double>(rng.Index(40)));
    }
  }
  const std::size_t num_pushes = 2 + rng.Index(60);
  double t = 0.0;
  for (std::size_t p = 0; p < num_pushes; ++p) {
    t += kGrid * static_cast<double>(rng.Index(8));  // 0 ⇒ duplicate times
    inputs.pushes.emplace_back(SimTime::FromSeconds(t),
                               static_cast<WorkerId>(
                                   rng.Index(inputs.num_workers)));
  }
  inputs.epoch_begin = SimTime::Zero();
  inputs.epoch_end = SimTime::FromSeconds(t + 1.0);
  return inputs;
}

std::string FormatInputs(const TuningInputs& inputs) {
  std::ostringstream out;
  out << "workers=" << inputs.num_workers << " spans=[";
  for (Duration s : inputs.iteration_span) out << s.seconds() << ' ';
  out << "] pulls=[";
  for (const auto& pull : inputs.last_pull) {
    if (pull.has_value()) {
      out << pull->seconds() << ' ';
    } else {
      out << "- ";
    }
  }
  out << "] pushes:";
  for (const auto& [time, worker] : inputs.pushes) {
    out << " (" << time.seconds() << ",w" << worker << ')';
  }
  return out.str();
}

// --- equivalence checks ------------------------------------------------------

// Bitwise comparison of the two engines on one timeline. Returns a failure
// description, or nullopt when equivalent.
std::optional<std::string> CheckEquivalence(const TuningInputs& inputs,
                                            double loss_weight,
                                            std::size_t max_candidates,
                                            bool per_worker_rate) {
  if (inputs.pushes.size() < 2 || inputs.num_workers < 2) return std::nullopt;
  const Duration max_delta = MeanSpan(inputs);
  const std::vector<Duration> candidates =
      AdaptiveTuner::CandidateDeltas(inputs, max_delta, max_candidates);
  // Per-candidate F̃ values must match the reference evaluation bitwise.
  const std::vector<double> values =
      AdaptiveTuner::EvaluateCandidates(inputs, candidates, loss_weight);
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const double want =
        AdaptiveTuner::EstimateImprovement(inputs, candidates[c], loss_weight);
    if (values[c] != want) {
      std::ostringstream msg;
      msg << "candidate " << c << " (delta " << candidates[c].seconds()
          << "): incremental " << values[c] << " != reference " << want;
      return msg.str();
    }
  }
  // End-to-end decisions must match bitwise too (covers the prune and the
  // argmax tie-break).
  AdaptiveTunerConfig config;
  config.loss_weight = loss_weight;
  config.max_candidates = max_candidates;
  config.per_worker_rate = per_worker_rate;
  config.incremental = true;
  AdaptiveTuner incremental(config);
  config.incremental = false;
  AdaptiveTuner full(config);
  const SpeculationParams got = incremental.OnEpochEnd(inputs);
  const SpeculationParams want = full.OnEpochEnd(inputs);
  if (got.abort_time.seconds() != want.abort_time.seconds() ||
      got.abort_rate != want.abort_rate ||
      got.per_worker_rate != want.per_worker_rate) {
    std::ostringstream msg;
    msg << "decision mismatch: incremental (ABORT_TIME "
        << got.abort_time.seconds() << ", rate " << got.abort_rate
        << ") != full replay (ABORT_TIME " << want.abort_time.seconds()
        << ", rate " << want.abort_rate << ')';
    return msg.str();
  }
  return std::nullopt;
}

// Greedy ddmin over the push timeline: delete the largest chunk that keeps
// the engines disagreeing, halving the chunk until single pushes survive.
TuningInputs ShrinkPushes(TuningInputs inputs, double loss_weight,
                          std::size_t max_candidates, bool per_worker_rate) {
  const auto still_fails = [&](const TuningInputs& candidate) {
    return CheckEquivalence(candidate, loss_weight, max_candidates,
                            per_worker_rate)
        .has_value();
  };
  std::size_t chunk = std::max<std::size_t>(1, inputs.pushes.size() / 2);
  for (;;) {
    bool removed_any = false;
    std::size_t offset = 0;
    while (offset < inputs.pushes.size()) {
      TuningInputs candidate = inputs;
      const std::size_t end =
          std::min(offset + chunk, candidate.pushes.size());
      candidate.pushes.erase(candidate.pushes.begin() + offset,
                             candidate.pushes.begin() + end);
      if (still_fails(candidate)) {
        inputs = std::move(candidate);
        removed_any = true;
      } else {
        offset += chunk;
      }
    }
    if (chunk == 1) {
      if (!removed_any) break;
    } else {
      chunk /= 2;
    }
  }
  return inputs;
}

void RunTrials(std::size_t trials, double loss_weight,
               std::size_t max_candidates, bool per_worker_rate) {
  const std::uint64_t base = BaseSeed();
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = base + trial * 6364136223846793005ULL;
    const TuningInputs inputs = GenerateInputs(seed);
    const auto failure =
        CheckEquivalence(inputs, loss_weight, max_candidates, per_worker_rate);
    if (failure.has_value()) {
      const TuningInputs minimal =
          ShrinkPushes(inputs, loss_weight, max_candidates, per_worker_rate);
      FAIL() << "seed " << seed << " (trial " << trial << "): " << *failure
             << "\nminimal counterexample (" << minimal.pushes.size()
             << " pushes): " << FormatInputs(minimal);
    }
  }
}

TEST(TunerEquivalence, RandomTimelinesPaperObjective) {
  RunTrials(300, /*loss_weight=*/1.0, /*max_candidates=*/4096,
            /*per_worker_rate=*/false);
}

TEST(TunerEquivalence, RandomTimelinesWeightedLossPerWorkerRates) {
  RunTrials(300, /*loss_weight=*/0.3, /*max_candidates=*/4096,
            /*per_worker_rate=*/true);
}

TEST(TunerEquivalence, RandomTimelinesStridedCandidateCap) {
  // A small cap forces the strided-subset path; the sweep must still match.
  RunTrials(200, /*loss_weight=*/1.0, /*max_candidates=*/7,
            /*per_worker_rate=*/false);
}

// --- scripted boundary timelines ---------------------------------------------

TuningInputs ScriptedBase() {
  TuningInputs inputs;
  inputs.num_workers = 3;
  inputs.finished_epoch = 2;
  inputs.epoch_begin = SimTime::Zero();
  inputs.epoch_end = SimTime::FromSeconds(10.0);
  inputs.iteration_span = {Duration::Seconds(2.0), Duration::Seconds(1.0),
                           Duration::Seconds(4.0)};
  inputs.last_pull = {SimTime::FromSeconds(1.0), SimTime::FromSeconds(2.0),
                      std::nullopt};  // worker 2: no pull this epoch
  return inputs;
}

TEST(TunerEquivalence, ScriptedWindowEdgeExactlyOnPush) {
  // Pushes at pull + Δ exactly: the closed right edge must be included by
  // both engines (the reference uses `<=`; the incremental bucketing must
  // bucket the push into that candidate, not the next).
  TuningInputs inputs = ScriptedBase();
  inputs.pushes = {{SimTime::FromSeconds(1.0), 1},   // == w0 pull: excluded
                   {SimTime::FromSeconds(1.5), 1},
                   {SimTime::FromSeconds(2.5), 0},   // == w0 pull + 1.5
                   {SimTime::FromSeconds(2.5), 1},   // duplicate time
                   {SimTime::FromSeconds(3.0), 2}};  // == w1 pull + 1.0
  EXPECT_EQ(CheckEquivalence(inputs, 1.0, 4096, false), std::nullopt);
  EXPECT_EQ(CheckEquivalence(inputs, 0.3, 4096, true), std::nullopt);
}

TEST(TunerEquivalence, ScriptedSinglePusherAndNoPullWorkers) {
  TuningInputs inputs = ScriptedBase();
  inputs.last_pull = {SimTime::FromSeconds(1.0), std::nullopt, std::nullopt};
  inputs.pushes = {{SimTime::FromSeconds(1.5), 0},
                   {SimTime::FromSeconds(2.0), 0},
                   {SimTime::FromSeconds(2.25), 0}};
  EXPECT_EQ(CheckEquivalence(inputs, 1.0, 4096, false), std::nullopt);
}

TEST(TunerEquivalence, GoldenSimDigestAndAuditRetunesIdentical) {
  // End to end: a full 8-worker Adaptive simulation under each engine must
  // produce the identical trace digest and the identical audited retune
  // sequence — every per-epoch ABORT_TIME/ABORT_RATE to the bit.
  const Workload workload = MakeConvexWorkload(/*seed=*/1, /*scale=*/0.2);
  ExperimentConfig config;
  config.cluster = ClusterSpec::Homogeneous(8);
  config.scheme = SchemeSpec::Adaptive();
  config.max_time = SimTime::FromSeconds(120.0);
  config.stop_on_convergence = false;
  config.seed = 41;

  obs::ObsContext incremental_obs;
  config.scheme.adaptive.incremental = true;
  config.obs = &incremental_obs;
  const ExperimentResult incremental = RunExperiment(workload, config);

  obs::ObsContext full_obs;
  config.scheme.adaptive.incremental = false;
  config.obs = &full_obs;
  const ExperimentResult full = RunExperiment(workload, config);

  EXPECT_EQ(TraceDigest(incremental.sim.trace), TraceDigest(full.sim.trace));
  const auto got = incremental_obs.audit.retunes();
  const auto want = full_obs.audit.retunes();
  ASSERT_GT(want.size(), 0u) << "golden sim produced no retunes to compare";
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].epoch, want[i].epoch);
    EXPECT_EQ(got[i].at.seconds(), want[i].at.seconds());
    EXPECT_EQ(got[i].abort_time.seconds(), want[i].abort_time.seconds());
    EXPECT_EQ(got[i].abort_rate, want[i].abort_rate);
    EXPECT_EQ(got[i].epoch_pushes, want[i].epoch_pushes);
  }
}

// --- the planted bug ---------------------------------------------------------

TEST(TunerEquivalence, WrongPruneIsCaught) {
  // Crafted so the argmax lands exactly on the saturation candidate: worker
  // 1 pushes at 1,2,3,4; spans are huge so the loss term is negligible and
  // the widest window (Δ = 3) wins. A prune that drops the saturation
  // candidate itself — evaluating [0, saturation) instead of
  // [0, saturation] — must change the decision, proving the equivalence
  // battery detects an off-by-one prune.
  TuningInputs inputs;
  inputs.num_workers = 2;
  inputs.finished_epoch = 1;
  inputs.epoch_begin = SimTime::Zero();
  inputs.epoch_end = SimTime::FromSeconds(10.0);
  inputs.iteration_span = {Duration::Seconds(100.0), Duration::Seconds(100.0)};
  inputs.last_pull = {SimTime::FromSeconds(1.25), SimTime::FromSeconds(1.5)};
  inputs.pushes = {{SimTime::FromSeconds(1.0), 1},
                   {SimTime::FromSeconds(2.0), 1},
                   {SimTime::FromSeconds(3.0), 1},
                   {SimTime::FromSeconds(4.0), 1}};

  const std::vector<Duration> candidates =
      AdaptiveTuner::CandidateDeltas(inputs, MeanSpan(inputs), 4096);
  ASSERT_EQ(candidates.size(), 3u);  // {1, 2, 3}
  const std::size_t saturation =
      AdaptiveTuner::SaturationIndex(inputs, candidates);
  ASSERT_EQ(saturation, 2u);  // every window covers t_last=4 from Δ=3 on

  // The correct engines agree, and pick the saturation candidate.
  ASSERT_EQ(CheckEquivalence(inputs, 1.0, 4096, false), std::nullopt);
  AdaptiveTuner tuner{AdaptiveTunerConfig{}};
  EXPECT_EQ(tuner.OnEpochEnd(inputs).abort_time.seconds(), 3.0);

  // The buggy prune — same sweep, one candidate short — decides differently.
  const std::vector<double> values =
      AdaptiveTuner::EvaluateCandidates(inputs, candidates, 1.0);
  Duration buggy_best = Duration::Zero();
  double buggy_value = 0.0;
  for (std::size_t c = 0; c < saturation; ++c) {  // BUG: excludes saturation
    if (values[c] > buggy_value) {
      buggy_value = values[c];
      buggy_best = candidates[c];
    }
  }
  EXPECT_NE(buggy_best.seconds(), 3.0)
      << "the planted wrong prune went undetected — the battery has no teeth";
}

TEST(TunerEquivalence, SaturationPruneNeverMovesTheArgmax) {
  // Direct property check of the prune invariant on random timelines: the
  // full argmax always lies within [0, SaturationIndex].
  const std::uint64_t base = BaseSeed();
  for (std::size_t trial = 0; trial < 200; ++trial) {
    const TuningInputs inputs = GenerateInputs(base + trial * 999983ULL);
    const std::vector<Duration> candidates =
        AdaptiveTuner::CandidateDeltas(inputs, MeanSpan(inputs), 4096);
    if (candidates.empty()) continue;
    const std::vector<double> values =
        AdaptiveTuner::EvaluateCandidates(inputs, candidates, 1.0);
    std::size_t argmax = candidates.size();  // = "none positive"
    double best = 0.0;
    for (std::size_t c = 0; c < values.size(); ++c) {
      if (values[c] > best) {
        best = values[c];
        argmax = c;
      }
    }
    if (argmax == candidates.size()) continue;
    EXPECT_LE(argmax, AdaptiveTuner::SaturationIndex(inputs, candidates))
        << FormatInputs(inputs);
  }
}

}  // namespace
}  // namespace specsync
