// Sim <-> runtime protocol equivalence.
//
// The same SpecSyncScheduler runs under two dispatch disciplines:
//   - the discrete-event simulator (sim/cluster.cc): scripted events are
//     queued up front; a CheckRequest becomes ScheduleAfter(delay) and the
//     timer callback calls HandleCheckTimer at the virtual fire time;
//   - the runtime scheduler thread (runtime/runtime_cluster.cc
//     SchedulerLoop): a priority queue of timers fired ahead of the next
//     mailbox message once their deadline is due.
// This test drives the shared scheduler with one scripted notify/pull
// timeline through faithful replicas of both call sites and asserts the two
// engines produce the identical ordered abort decisions and identical
// SchedulerStats — the "identical protocol logic under virtual and real
// time" claim in scheduler.h, checked end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <queue>
#include <vector>

#include "core/adaptive_tuner.h"
#include "core/scheduler.h"
#include "obs/obs.h"
#include "sim/simulator.h"

namespace specsync {
namespace {

struct ScriptEvent {
  SimTime time;
  WorkerId worker = 0;
  bool is_pull = false;  // else notify
  IterationId iteration = 0;
};

// One abort decision, in the order the scheduler made it.
struct Decision {
  WorkerId worker = 0;
  std::uint64_t token = 0;
  double fire_seconds = 0.0;
  bool abort = false;

  bool operator==(const Decision& other) const {
    return worker == other.worker && token == other.token &&
           fire_seconds == other.fire_seconds && abort == other.abort;
  }
};

// Irregular but deterministic timeline: four workers, ten iterations each,
// spans varied so pushes cluster near round boundaries (provoking aborts)
// and all workers push every epoch (provoking retunes). Offsets are chosen
// so no two events or timer deadlines ever tie in floating point — ties are
// broken differently by the two dispatch disciplines and never occur in the
// real engines' continuous-time runs.
std::vector<ScriptEvent> BuildScript(std::size_t num_workers,
                                     std::size_t rounds) {
  std::vector<ScriptEvent> script;
  for (WorkerId w = 0; w < num_workers; ++w) {
    double t = 0.0131 * static_cast<double>(w + 1);
    for (std::size_t k = 0; k < rounds; ++k) {
      script.push_back({SimTime::FromSeconds(t), w, /*is_pull=*/true, k});
      const double span =
          0.9 + 0.13 * static_cast<double>(w) +
          0.041 * static_cast<double>((3 * k + 2 * w) % 5);
      t += span;
      script.push_back({SimTime::FromSeconds(t), w, /*is_pull=*/false, k});
      t += 0.0073 * static_cast<double>(w + 1);
    }
  }
  std::sort(script.begin(), script.end(),
            [](const ScriptEvent& a, const ScriptEvent& b) {
              return a.time < b.time;
            });
  return script;
}

SchedulerConfig TestConfig() {
  SchedulerConfig config;
  config.num_workers = 4;
  config.initial_params.abort_time = Duration::Seconds(0.37);
  config.initial_params.abort_rate = 0.3;
  config.default_span = Duration::Seconds(1.0);
  return config;
}

struct DriveResult {
  std::vector<Decision> decisions;
  SchedulerStats stats;
  SpeculationParams final_params;
};

// Driver A — the DES call site (sim/cluster.cc): all scripted events are
// pre-scheduled; HandleNotify's CheckRequest turns into ScheduleAfter(delay)
// whose callback runs HandleCheckTimer at sim.now().
DriveResult DriveWithSimulator(const std::vector<ScriptEvent>& script,
                               std::unique_ptr<SpeculationPolicy> policy,
                               obs::ObsContext* obs = nullptr) {
  Simulator sim;
  SpecSyncScheduler scheduler(TestConfig(), std::move(policy));
  scheduler.AttachObservability(obs);
  DriveResult out;
  for (const ScriptEvent& ev : script) {
    sim.ScheduleAt(ev.time, [&, ev] {
      if (ev.is_pull) {
        scheduler.HandlePull(ev.worker, sim.now());
        return;
      }
      auto request = scheduler.HandleNotify(ev.worker, ev.iteration, sim.now());
      if (!request.has_value()) return;
      sim.ScheduleAfter(request->delay,
                        [&, worker = ev.worker, token = request->token] {
                          Decision d;
                          d.worker = worker;
                          d.token = token;
                          d.fire_seconds = sim.now().seconds();
                          d.abort =
                              scheduler.HandleCheckTimer(worker, token, sim.now());
                          out.decisions.push_back(d);
                        });
    });
  }
  sim.Run();
  out.stats = scheduler.stats();
  out.final_params = scheduler.params();
  return out;
}

// Driver B — the runtime call site (runtime_cluster.cc SchedulerLoop): a
// min-heap of armed timers, fired before the next mailbox message once due.
// The wall clock is replaced by the scripted timestamps (an ideal
// ReceiveUntil that wakes exactly at the deadline), which is the runtime
// loop in the zero-jitter limit.
DriveResult DriveWithRuntimeLoop(const std::vector<ScriptEvent>& script,
                                 std::unique_ptr<SpeculationPolicy> policy) {
  struct Timer {
    SimTime deadline;
    WorkerId worker;
    std::uint64_t token;
    bool operator>(const Timer& other) const {
      return deadline > other.deadline;
    }
  };
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers;
  SpecSyncScheduler scheduler(TestConfig(), std::move(policy));
  DriveResult out;

  auto fire = [&](const Timer& timer) {
    Decision d;
    d.worker = timer.worker;
    d.token = timer.token;
    d.fire_seconds = timer.deadline.seconds();
    d.abort =
        scheduler.HandleCheckTimer(timer.worker, timer.token, timer.deadline);
    out.decisions.push_back(d);
  };

  for (const ScriptEvent& ev : script) {
    while (!timers.empty() && timers.top().deadline <= ev.time) {
      const Timer timer = timers.top();
      timers.pop();
      fire(timer);
    }
    if (ev.is_pull) {
      scheduler.HandlePull(ev.worker, ev.time);
      continue;
    }
    auto request = scheduler.HandleNotify(ev.worker, ev.iteration, ev.time);
    if (request.has_value()) {
      timers.push(Timer{ev.time + request->delay, ev.worker, request->token});
    }
  }
  while (!timers.empty()) {  // mailbox closed: drain remaining timers
    const Timer timer = timers.top();
    timers.pop();
    fire(timer);
  }
  out.stats = scheduler.stats();
  out.final_params = scheduler.params();
  return out;
}

void ExpectSameStats(const SchedulerStats& a, const SchedulerStats& b) {
  EXPECT_EQ(a.notifies_received, b.notifies_received);
  EXPECT_EQ(a.checks_performed, b.checks_performed);
  EXPECT_EQ(a.resyncs_issued, b.resyncs_issued);
  EXPECT_EQ(a.stale_checks_skipped, b.stale_checks_skipped);
  EXPECT_EQ(a.retunes, b.retunes);
  EXPECT_EQ(a.duplicate_notifies, b.duplicate_notifies);
  EXPECT_EQ(a.late_checks, b.late_checks);
  EXPECT_EQ(a.lost_worker_epochs_unblocked, b.lost_worker_epochs_unblocked);
  EXPECT_EQ(a.worker_departures, b.worker_departures);
  EXPECT_EQ(a.worker_rejoins, b.worker_rejoins);
}

void ExpectSameDecisions(const DriveResult& sim, const DriveResult& runtime) {
  ASSERT_EQ(sim.decisions.size(), runtime.decisions.size());
  for (std::size_t i = 0; i < sim.decisions.size(); ++i) {
    EXPECT_EQ(sim.decisions[i], runtime.decisions[i]) << "decision " << i;
  }
}

TEST(SchedulerProtocolEquivalenceTest, FixedPolicyDecisionsMatch) {
  const auto script = BuildScript(4, 10);
  auto make_policy = [] {
    SpeculationParams params;
    params.abort_time = Duration::Seconds(0.37);
    params.abort_rate = 0.3;
    return std::make_unique<FixedSpeculationPolicy>(params);
  };
  const DriveResult sim = DriveWithSimulator(script, make_policy());
  const DriveResult runtime = DriveWithRuntimeLoop(script, make_policy());

  // Non-vacuity: the timeline must exercise checks and at least one re-sync.
  EXPECT_GT(sim.stats.checks_performed, 0u);
  EXPECT_GT(sim.stats.resyncs_issued, 0u);
  EXPECT_GT(sim.stats.retunes, 0u);

  ExpectSameDecisions(sim, runtime);
  ExpectSameStats(sim.stats, runtime.stats);
}

// The decision audit log must be a faithful transcript: one record per fired
// check timer, in fire order, carrying the exact inputs the decision used.
// Replays the fixed-policy scripted timeline and cross-checks every Decision
// against the corresponding CheckRecord.
TEST(SchedulerProtocolEquivalenceTest, AuditLogReproducesEveryDecision) {
  const auto script = BuildScript(4, 10);
  SpeculationParams params;
  params.abort_time = Duration::Seconds(0.37);
  params.abort_rate = 0.3;
  obs::ObsContext ctx;
  const DriveResult sim = DriveWithSimulator(
      script, std::make_unique<FixedSpeculationPolicy>(params), &ctx);

  EXPECT_GT(sim.stats.resyncs_issued, 0u);
  EXPECT_GT(sim.stats.checks_performed, sim.stats.resyncs_issued);

  const auto& records = ctx.audit.checks();
  ASSERT_EQ(records.size(), sim.decisions.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const obs::CheckRecord& rec = records[i];
    const Decision& d = sim.decisions[i];
    EXPECT_EQ(rec.worker, d.worker) << "record " << i;
    EXPECT_EQ(rec.token, d.token) << "record " << i;
    EXPECT_EQ(rec.fired_at.seconds(), d.fire_seconds) << "record " << i;
    EXPECT_EQ(rec.outcome == obs::CheckOutcome::kResync, d.abort)
        << "record " << i;
    if (rec.outcome == obs::CheckOutcome::kStale) continue;
    // The fixed policy never retunes away from 0.37s / 0.3, and all four
    // workers stay active, so every decided check used the same inputs.
    // (abort_time is reconstructed as deadline - window_begin, so it matches
    // 0.37 only to rounding.)
    EXPECT_NEAR(rec.abort_time.seconds(), 0.37, 1e-12) << "record " << i;
    EXPECT_DOUBLE_EQ(rec.abort_rate, 0.3) << "record " << i;
    EXPECT_EQ(rec.active_workers, 4u) << "record " << i;
    EXPECT_DOUBLE_EQ(rec.threshold, 4.0 * 0.3) << "record " << i;
    // The recorded evidence implies the recorded outcome.
    EXPECT_EQ(static_cast<double>(rec.pushes_seen) >= rec.threshold, d.abort)
        << "record " << i;
    // Timers fire exactly at the armed deadline in the zero-jitter sim.
    EXPECT_EQ(rec.fired_at.seconds(), rec.armed_deadline.seconds())
        << "record " << i;
    EXPECT_EQ(rec.window_end.seconds(), rec.armed_deadline.seconds())
        << "record " << i;
    EXPECT_FALSE(rec.late) << "record " << i;
  }

  // Outcome tallies reconcile with the scheduler's own statistics.
  std::uint64_t stale = 0, resync = 0, keep = 0;
  for (const obs::CheckRecord& rec : records) {
    switch (rec.outcome) {
      case obs::CheckOutcome::kStale: ++stale; break;
      case obs::CheckOutcome::kResync: ++resync; break;
      case obs::CheckOutcome::kKeep: ++keep; break;
    }
  }
  EXPECT_EQ(stale, sim.stats.stale_checks_skipped);
  EXPECT_EQ(resync, sim.stats.resyncs_issued);
  EXPECT_EQ(keep + resync, sim.stats.checks_performed);
  EXPECT_EQ(ctx.audit.retunes().size(), sim.stats.retunes);
}

TEST(SchedulerProtocolEquivalenceTest, AdaptiveTunerDecisionsMatch) {
  const auto script = BuildScript(4, 10);
  const DriveResult sim =
      DriveWithSimulator(script, std::make_unique<AdaptiveTuner>());
  const DriveResult runtime =
      DriveWithRuntimeLoop(script, std::make_unique<AdaptiveTuner>());

  EXPECT_GT(sim.stats.checks_performed, 0u);
  EXPECT_GT(sim.stats.retunes, 0u);

  ExpectSameDecisions(sim, runtime);
  ExpectSameStats(sim.stats, runtime.stats);
  // Retuned hyperparameters must also agree — the tuner saw the same epochs.
  EXPECT_EQ(sim.final_params.abort_time.seconds(),
            runtime.final_params.abort_time.seconds());
  EXPECT_EQ(sim.final_params.abort_rate, runtime.final_params.abort_rate);
}

}  // namespace
}  // namespace specsync
