// Observability demo: one instrumented run, two artifacts.
//
// Attaches an ObsContext to the threaded runtime (real worker threads, real
// wall clocks), trains briefly with speculation on, then:
//   - prints the live counters and the p50/p95 of every latency histogram
//     (per-shard lock waits, pull/push service times, iteration walls);
//   - prints the scheduler's decision audit — one record per abort-check with
//     the inputs the decision used (pushes seen, window, threshold);
//   - writes observability_metrics.json (full snapshot, schema in
//     EXPERIMENTS.md) and observability_trace.json (Chrome trace-event JSON —
//     open it in https://ui.perfetto.dev or chrome://tracing to see per-worker
//     compute/pull/push spans and scheduler decision instants).
//
// Run: ./build/examples/observability_demo
#include <iostream>

#include "common/table.h"
#include "data/synthetic.h"
#include "models/softmax_regression.h"
#include "obs/obs.h"
#include "runtime/runtime_cluster.h"

using namespace specsync;

int main() {
  Rng rng(21);
  ClassificationSpec spec;
  spec.num_examples = 1200;
  spec.feature_dim = 32;
  spec.num_classes = 5;
  auto data = std::make_shared<ClassificationDataset>(
      GenerateClassification(spec, rng));
  auto model = std::make_shared<SoftmaxRegressionModel>(
      std::move(data), SoftmaxRegressionConfig{});

  RuntimeConfig config;
  config.num_workers = 4;
  config.iterations_per_worker = 40;
  config.batch_size = 32;
  config.compute_chunks = 8;
  config.chunk_delay = std::chrono::microseconds(300);
  config.fixed_params.abort_time = Duration::Milliseconds(1.0);
  config.fixed_params.abort_rate = 0.25;

  obs::ObsContext ctx;
  config.obs = &ctx;

  std::cout << "Training on 4 real worker threads with a full ObsContext "
               "attached...\n\n";
  RuntimeCluster cluster(std::move(model),
                         std::make_shared<ConstantSchedule>(0.2), config);
  const RuntimeResult result = cluster.Run();

  std::cout << "--- counters ---\n";
  Table counters({"counter", "value"});
  for (const auto& [name, value] : ctx.metrics.CounterValues()) {
    counters.AddRowValues(name, static_cast<unsigned long long>(value));
  }
  counters.PrintPretty(std::cout);

  std::cout << "\n--- latency histograms (wall time) ---\n";
  Table latencies({"histogram", "count", "p50_us", "p95_us", "max_us"});
  for (const auto& [name, hist] : ctx.metrics.Histograms()) {
    if (hist->count() == 0) continue;
    latencies.AddRowValues(name,
                           static_cast<unsigned long long>(hist->count()),
                           hist->ApproxQuantileSeconds(0.5) * 1e6,
                           hist->ApproxQuantileSeconds(0.95) * 1e6,
                           hist->max_seconds() * 1e6);
  }
  latencies.PrintPretty(std::cout);

  std::cout << "\n--- scheduler decision audit (first 10 of "
            << ctx.audit.check_count() << " checks) ---\n";
  Table audit({"worker", "token", "fired_at_s", "pushes_seen", "threshold",
               "outcome"});
  std::size_t shown = 0;
  for (const obs::CheckRecord& rec : ctx.audit.checks()) {
    if (++shown > 10) break;
    audit.AddRowValues(static_cast<unsigned long>(rec.worker),
                       static_cast<unsigned long long>(rec.token),
                       rec.fired_at.seconds(),
                       static_cast<unsigned long long>(rec.pushes_seen),
                       rec.threshold, obs::CheckOutcomeName(rec.outcome));
  }
  audit.PrintPretty(std::cout);

  std::cout << "\nrun: pushes=" << result.total_pushes
            << " aborts=" << result.total_aborts
            << " resyncs=" << result.scheduler_stats.resyncs_issued
            << " final_loss=" << result.final_loss << "\n\n";

  obs::WriteMetricsJsonFile(ctx, "observability_metrics.json");
  obs::WriteChromeTraceFile(ctx.spans, "observability_trace.json");
  std::cout << "wrote observability_metrics.json ("
            << ctx.audit.check_count() << " audit records) and "
            << "observability_trace.json (" << ctx.spans.event_count()
            << " trace events)\nopen the trace in https://ui.perfetto.dev or "
               "chrome://tracing\n";
  return 0;
}
