// Quickstart: train matrix factorization on a simulated 40-worker cluster,
// first with plain asynchronous parallelism (MXNet's default, the paper's
// "Original"), then with SpecSync-Adaptive layered on top — and compare
// time-to-convergence.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "common/table.h"
#include "harness/experiment.h"
#include "harness/workload.h"

using namespace specsync;

int main() {
  // 1) A workload: model + data + learning-rate schedule + timing profile.
  const Workload workload = MakeMfWorkload(/*seed=*/1);

  // 2) A cluster: 40 homogeneous workers (the paper's Cluster 1 shape).
  ExperimentConfig config;
  config.cluster = ClusterSpec::Homogeneous(40);
  config.seed = 42;
  config.max_time = SimTime::FromSeconds(1500.0);

  // 3) Run the ASP baseline, then SpecSync-Adaptive.
  config.scheme = SchemeSpec::Original();
  const ExperimentResult asp = RunExperiment(workload, config);

  config.scheme = SchemeSpec::Adaptive();
  const ExperimentResult spec = RunExperiment(workload, config);

  // 4) Report.
  Table table({"scheme", "converged", "time_to_target(s)", "final_loss",
               "pushes", "aborts"});
  for (const ExperimentResult* r : {&asp, &spec}) {
    table.AddRowValues(
        r->scheme_name, r->time_to_target.has_value() ? "yes" : "no",
        r->time_to_target.has_value() ? r->time_to_target->seconds() : -1.0,
        r->final_loss, r->sim.total_pushes, r->sim.total_aborts);
  }
  table.PrintPretty(std::cout);

  if (asp.time_to_target && spec.time_to_target) {
    std::cout << "\nSpecSync-Adaptive speedup over ASP: "
              << asp.time_to_target->seconds() / spec.time_to_target->seconds()
              << "x\n";
  }
  return 0;
}
