// Staleness playground: how the learning rate turns parameter staleness from
// harmless into harmful (the regime the paper operates in — Sec. II-C).
//
// Sweeps the learning rate on one workload and prints early loss curves for
// BSP (fresh gradients) vs ASP (stale gradients) vs SpecSync-Adaptive. At low
// rates all three match; past a threshold, ASP degrades and SpecSync recovers
// most of the gap at a fraction of BSP's synchronization cost.
//
// Usage: staleness_study [workload] [workers] [horizon_s] [eta1 eta2 ...]
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "harness/experiment.h"
#include "harness/workload.h"

using namespace specsync;

namespace {

Workload PickWorkload(const std::string& name) {
  if (name == "cifar10") return MakeCifar10Workload(1);
  if (name == "convex") return MakeConvexWorkload(1);
  if (name == "imagenet") return MakeImageNetWorkload(1);
  return MakeMfWorkload(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workload_name = argc > 1 ? argv[1] : "mf";
  const std::size_t num_workers =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 16;
  const double horizon = argc > 3 ? std::atof(argv[3]) : 600.0;
  std::vector<double> etas;
  for (int i = 4; i < argc; ++i) etas.push_back(std::atof(argv[i]));
  if (etas.empty()) etas = {0.5, 1.0, 2.0};

  Workload workload = PickWorkload(workload_name);

  for (double eta : etas) {
    workload.schedule = std::make_shared<ConstantSchedule>(eta);
    std::cout << "\n=== " << workload.name << ", eta=" << eta
              << ", workers=" << num_workers << " ===\n";

    SpeculationParams big_window;
    big_window.abort_time = workload.iteration_time * 0.35;
    big_window.abort_rate = 0.22;
    std::vector<std::pair<std::string, SchemeSpec>> entries = {
        {"BSP", SchemeSpec::Bsp()},
        {"ASP", SchemeSpec::Original()},
        {"SpecSync", SchemeSpec::Adaptive()},
        {"Cherry", SchemeSpec::Cherrypick(big_window)},
    };
    std::vector<ExperimentResult> results;
    for (auto& [label, scheme] : entries) {
      ExperimentConfig config;
      config.cluster = ClusterSpec::Homogeneous(num_workers);
      config.scheme = scheme;
      config.max_time = SimTime::FromSeconds(horizon);
      config.stop_on_convergence = false;
      config.seed = 42;
      results.push_back(RunExperiment(workload, config));
    }
    // Mean staleness (pushes applied between a worker's pull and its own
    // push) per scheme — the quantity SpecSync exists to reduce.
    auto mean_staleness = [](const ExperimentResult& r) {
      double total = 0.0;
      for (const PushEvent& e : r.sim.trace.pushes()) {
        total += static_cast<double>(e.missed_updates);
      }
      return r.sim.trace.pushes().empty()
                 ? 0.0
                 : total / static_cast<double>(r.sim.trace.pushes().size());
    };
    std::cout << "mean staleness: BSP=" << mean_staleness(results[0])
              << " ASP=" << mean_staleness(results[1])
              << " SpecSync=" << mean_staleness(results[2])
              << " Cherry=" << mean_staleness(results[3])
              << " (cherry aborts=" << results[3].sim.total_aborts << ")"
              << "  (aborts=" << results[2].sim.total_aborts << "/"
              << results[2].sim.total_pushes << " pushes; tuned abort_time="
              << results[2].sim.final_params.abort_time << " abort_rate="
              << results[2].sim.final_params.abort_rate << ")\n";

    Table table({"time(s)", "BSP", "ASP", "SpecSync", "Cherry", "ASP_pushes",
                 "Spec_aborts"});
    for (int i = 1; i <= 12; ++i) {
      const SimTime t = SimTime::FromSeconds(horizon * i / 12.0);
      auto fmt = [&](const ExperimentResult& r) {
        auto loss = LossAtTime(r.sim.trace, t);
        return loss ? Table::Format(*loss) : std::string("-");
      };
      table.AddRow({Table::Format(t.seconds()), fmt(results[0]),
                    fmt(results[1]), fmt(results[2]), fmt(results[3]),
                    Table::Format(static_cast<int>(results[1].sim.total_pushes)),
                    Table::Format(static_cast<int>(results[2].sim.total_aborts))});
    }
    table.PrintPretty(std::cout);
  }
  return 0;
}
