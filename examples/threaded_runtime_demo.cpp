// Live-protocol demo: the SpecSync scheduler running against real threads.
//
// Unlike the simulator (virtual time), this spins up actual worker threads
// and a scheduler thread exchanging notify / re-sync messages through
// mailboxes; aborts interrupt genuinely in-flight gradient computation at
// batch-chunk boundaries. Useful to convince yourself the protocol is not a
// simulation artifact.
//
// Run: ./build/examples/threaded_runtime_demo
#include <iostream>

#include "common/table.h"
#include "data/synthetic.h"
#include "models/softmax_regression.h"
#include "runtime/runtime_cluster.h"

using namespace specsync;

namespace {

std::shared_ptr<const Model> MakeModel() {
  Rng rng(21);
  ClassificationSpec spec;
  spec.num_examples = 1200;
  spec.feature_dim = 32;
  spec.num_classes = 5;
  auto data = std::make_shared<ClassificationDataset>(
      GenerateClassification(spec, rng));
  return std::make_shared<SoftmaxRegressionModel>(std::move(data),
                                                  SoftmaxRegressionConfig{});
}

RuntimeResult Run(bool speculation, std::shared_ptr<const Model> model) {
  RuntimeConfig config;
  config.num_workers = 4;
  config.iterations_per_worker = 40;
  config.batch_size = 32;
  config.compute_chunks = 8;
  // Stretch iterations to ~2.5ms so speculation windows are meaningful.
  config.chunk_delay = std::chrono::microseconds(300);
  if (speculation) {
    config.fixed_params.abort_time = Duration::Milliseconds(1.0);
    config.fixed_params.abort_rate = 0.25;  // 1 push from others
  }
  RuntimeCluster cluster(std::move(model),
                         std::make_shared<ConstantSchedule>(0.2), config);
  return cluster.Run();
}

}  // namespace

int main() {
  auto model = MakeModel();
  std::cout << "Training softmax regression on 4 real worker threads, "
            << "40 iterations each...\n\n";

  const RuntimeResult plain = Run(/*speculation=*/false, model);
  const RuntimeResult spec = Run(/*speculation=*/true, model);

  Table table({"mode", "pushes", "aborts", "resyncs", "checks", "final_loss",
               "wall_ms"});
  table.AddRowValues("ASP (no speculation)", plain.total_pushes,
                     plain.total_aborts,
                     plain.scheduler_stats.resyncs_issued,
                     plain.scheduler_stats.checks_performed, plain.final_loss,
                     static_cast<long long>(plain.elapsed.count()));
  table.AddRowValues("SpecSync (1ms window)", spec.total_pushes,
                     spec.total_aborts, spec.scheduler_stats.resyncs_issued,
                     spec.scheduler_stats.checks_performed, spec.final_loss,
                     static_cast<long long>(spec.elapsed.count()));
  table.PrintPretty(std::cout);

  std::cout << "\nEvery abort above interrupted an actual in-flight gradient\n"
               "computation between batch chunks, re-pulled the parameters,\n"
               "and restarted — the abort-and-refresh path of Algorithm 2\n"
               "under true concurrency.\n";
  return 0;
}
