// Compares all synchronization schemes the paper discusses — BSP, ASP,
// SSP, naive waiting, SpecSync-Cherrypick, SpecSync-Adaptive — on one
// workload, printing loss-vs-time series side by side (paper Sec. II-C
// and Fig. 8).
//
// Usage: scheme_comparison [workload] [num_workers] [max_sim_seconds]
//   workload: mf | cifar10 | imagenet   (default mf)
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "harness/experiment.h"
#include "harness/workload.h"

using namespace specsync;

namespace {

Workload PickWorkload(const std::string& name) {
  if (name == "cifar10") return MakeCifar10Workload(1);
  if (name == "imagenet") return MakeImageNetWorkload(1);
  return MakeMfWorkload(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workload_name = argc > 1 ? argv[1] : "mf";
  const std::size_t num_workers =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 16;
  const double max_seconds = argc > 3 ? std::atof(argv[3]) : 4000.0;

  const Workload workload = PickWorkload(workload_name);
  std::cout << "workload=" << workload.name << " workers=" << num_workers
            << " sim_horizon=" << max_seconds << "s\n\n";

  struct Entry {
    std::string label;
    SchemeSpec scheme;
  };
  SpeculationParams cherry;
  cherry.abort_time = workload.iteration_time * 0.15;
  cherry.abort_rate = 0.25;
  const std::vector<Entry> entries = {
      {"BSP", SchemeSpec::Bsp()},
      {"SSP(s=3)", SchemeSpec::Ssp(3)},
      {"ASP (Original)", SchemeSpec::Original()},
      {"Naive-1s", SchemeSpec::NaiveWaiting(Duration::Seconds(1.0))},
      {"SpecSync-Cherrypick", SchemeSpec::Cherrypick(cherry)},
      {"SpecSync-Adaptive", SchemeSpec::Adaptive()},
  };

  std::vector<ExperimentResult> results;
  for (const Entry& entry : entries) {
    ExperimentConfig config;
    config.cluster = ClusterSpec::Homogeneous(num_workers);
    config.scheme = entry.scheme;
    config.max_time = SimTime::FromSeconds(max_seconds);
    config.stop_on_convergence = false;  // full curves
    config.seed = 42;
    results.push_back(RunExperiment(workload, config));
  }

  // Loss curves at 10 checkpoints.
  Table curve({"time(s)", entries[0].label, entries[1].label, entries[2].label,
               entries[3].label, entries[4].label, entries[5].label});
  for (int i = 1; i <= 10; ++i) {
    const SimTime t = SimTime::FromSeconds(max_seconds * i / 10.0);
    std::vector<std::string> row{Table::Format(t.seconds())};
    for (const ExperimentResult& r : results) {
      auto loss = LossAtTime(r.sim.trace, t);
      row.push_back(loss ? Table::Format(*loss) : "-");
    }
    curve.AddRow(std::move(row));
  }
  curve.PrintPretty(std::cout);

  Table summary({"scheme", "time_to_target(s)", "final_loss", "pushes",
                 "aborts", "resyncs_issued"});
  for (const ExperimentResult& r : results) {
    auto ttt = TimeToTarget(r.sim.trace, workload.loss_target);
    summary.AddRowValues(r.scheme_name,
                         ttt ? Table::Format(ttt->seconds()) : "-",
                         r.final_loss, r.sim.total_pushes, r.sim.total_aborts,
                         r.sim.scheduler_stats.resyncs_issued);
  }
  std::cout << "\n(target loss = " << workload.loss_target << ")\n";
  summary.PrintPretty(std::cout);
  return 0;
}
