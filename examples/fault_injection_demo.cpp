// Fault-injection demo: the same SpecSync experiment healthy and under chaos.
//
// Part 1 runs the discrete-event simulator twice with one seed — once on a
// clean cluster and once with a lossy network, a mid-run slowdown, and a
// worker crash+rejoin — and prints how the protocol copes (epochs keep
// closing, duplicate notifies are deduped, the dead worker is excused).
// Part 2 repeats the exercise on real threads: a lossy control plane plus a
// permanently killed worker, with training still finishing.
//
// Run: ./build/examples/fault_injection_demo
#include <iostream>

#include "common/table.h"
#include "data/synthetic.h"
#include "models/softmax_regression.h"
#include "runtime/runtime_cluster.h"
#include "sim/cluster.h"

using namespace specsync;

namespace {

std::shared_ptr<const Model> MakeModel(std::uint64_t seed,
                                       std::size_t examples) {
  Rng rng(seed);
  ClassificationSpec spec;
  spec.num_examples = examples;
  spec.feature_dim = 16;
  spec.num_classes = 4;
  auto data = std::make_shared<ClassificationDataset>(
      GenerateClassification(spec, rng));
  return std::make_shared<SoftmaxRegressionModel>(std::move(data),
                                                  SoftmaxRegressionConfig{});
}

SimResult RunSim(const FaultPlanConfig& faults) {
  ClusterSimConfig config;
  config.num_workers = 4;
  config.num_servers = 2;
  config.batch_size = 16;
  config.eval_interval = Duration::Seconds(5.0);
  config.eval_subsample = 200;
  config.max_time = SimTime::FromSeconds(180.0);
  config.seed = 7;
  SpeculationParams params;
  params.abort_time = Duration::Seconds(0.5);
  params.abort_rate = 0.5;
  config.scheme = SchemeSpec::Cherrypick(params);
  config.faults = faults;
  ClusterSim sim(MakeModel(7, 600), std::make_shared<ConstantSchedule>(0.2),
                 std::make_unique<HomogeneousSpeedModel>(
                     Duration::Seconds(1.0), 0.1),
                 config);
  return sim.Run();
}

void AddSimRow(Table& table, const char* name, const SimResult& r) {
  table.AddRowValues(name, r.total_pushes, r.total_aborts,
                     r.fault_stats.drops, r.fault_stats.duplicates,
                     r.scheduler_stats.duplicate_notifies,
                     r.scheduler_stats.lost_worker_epochs_unblocked,
                     r.final_loss);
}

}  // namespace

int main() {
  std::cout << "=== Part 1: discrete-event simulation, seed 7 ===\n\n";

  const SimResult healthy = RunSim(FaultPlanConfig{});

  FaultPlanConfig chaos;
  chaos.data.drop_probability = 0.05;       // lost gradient pushes
  chaos.data.duplicate_probability = 0.05;  // double-applied gradients
  chaos.control.drop_probability = 0.10;    // lost notify / re-sync
  chaos.control.duplicate_probability = 0.15;
  chaos.control.delay_probability = 0.2;
  chaos.control.delay_mean = Duration::Milliseconds(20.0);
  chaos.slowdowns.push_back(
      SlowdownWindow{1, SimTime::FromSeconds(20.0),
                     SimTime::FromSeconds(60.0), 3.0});
  chaos.crashes.push_back(CrashEvent{2, SimTime::FromSeconds(40.0),
                                     SimTime::FromSeconds(100.0)});
  const SimResult faulty = RunSim(chaos);

  Table sim_table({"cluster", "pushes", "aborts", "msg_drops", "msg_dups",
                   "dup_notifies", "epochs_unblocked", "final_loss"});
  AddSimRow(sim_table, "healthy", healthy);
  AddSimRow(sim_table, "chaos", faulty);
  sim_table.PrintPretty(std::cout);

  std::cout << "\nWith all-zero fault probabilities the healthy row is"
               " bit-identical to a\nbuild without the fault subsystem;"
               " the chaos run is itself deterministic\n(same seed, same"
               " trace) because every fault decision comes from the\n"
               "plan's own forked RNG streams.\n\n";

  std::cout << "=== Part 2: real threads, lossy control plane ===\n\n";

  RuntimeConfig config;
  config.num_workers = 4;
  config.iterations_per_worker = 40;
  config.batch_size = 32;
  config.compute_chunks = 8;
  config.chunk_delay = std::chrono::microseconds(300);
  config.fixed_params.abort_time = Duration::Milliseconds(1.0);
  config.fixed_params.abort_rate = 0.25;
  config.faults.control.drop_probability = 0.10;
  config.faults.control.duplicate_probability = 0.10;
  config.faults.control.delay_probability = 0.2;
  config.faults.control.delay_mean = Duration::Milliseconds(1.0);
  // Worker 3 dies 30 ms in and never comes back.
  config.faults.crashes.push_back(
      CrashEvent{3, SimTime::FromSeconds(0.03), std::nullopt});
  RuntimeCluster cluster(MakeModel(21, 1200),
                         std::make_shared<ConstantSchedule>(0.2), config);
  const RuntimeResult result = cluster.Run();

  Table rt_table({"pushes", "aborts", "killed", "msg_drops", "dup_notifies",
                  "departures", "epochs_unblocked", "final_loss", "wall_ms"});
  rt_table.AddRowValues(result.total_pushes, result.total_aborts,
                        result.workers_killed, result.fault_stats.drops,
                        result.scheduler_stats.duplicate_notifies,
                        result.scheduler_stats.worker_departures,
                        result.scheduler_stats.lost_worker_epochs_unblocked,
                        result.final_loss,
                        static_cast<long long>(result.elapsed.count()));
  rt_table.PrintPretty(std::cout);

  std::cout << "\nThe three survivors finished their full quota: the"
               " scheduler excused the\ndead worker from epoch accounting"
               " instead of waiting for it forever.\n";
  return 0;
}
