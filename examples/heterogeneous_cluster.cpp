// Heterogeneous-cluster example (the paper's Cluster 2 scenario, Fig. 10).
//
// Builds a 20-worker cluster drawn from four instance classes with 1.7x /
// 0.9x / 1.0x / 0.5x relative iteration times, trains the CIFAR-10 proxy
// under ASP and under SpecSync-Adaptive, and reports how speculation narrows
// the staleness gap the slow class suffers.
//
// Run: ./build/examples/heterogeneous_cluster
#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/workload.h"

using namespace specsync;

namespace {

// Mean missed-updates per push, split by instance class (round-robin
// assignment: worker w belongs to class w % 4).
std::vector<double> StalenessByClass(const ExperimentResult& result,
                                     std::size_t num_classes) {
  std::vector<RunningStats> stats(num_classes);
  for (const PushEvent& push : result.sim.trace.pushes()) {
    stats[push.worker % num_classes].Add(
        static_cast<double>(push.missed_updates));
  }
  std::vector<double> means;
  means.reserve(num_classes);
  for (const RunningStats& s : stats) means.push_back(s.mean());
  return means;
}

}  // namespace

int main() {
  const Workload workload = MakeCifar10Workload(/*seed=*/1);

  ExperimentConfig config;
  config.cluster = ClusterSpec::Heterogeneous(20);
  config.max_time = SimTime::FromSeconds(2000.0);
  config.stop_on_convergence = false;
  config.seed = 11;

  config.scheme = SchemeSpec::Original();
  const ExperimentResult asp = RunExperiment(workload, config);
  config.scheme = SchemeSpec::Adaptive();
  const ExperimentResult spec = RunExperiment(workload, config);

  std::cout << "Heterogeneous cluster: classes x{1.7, 0.9, 1.0, 0.5} "
            << "iteration-time multipliers, 5 workers each\n\n";

  Table loss({"time(s)", "ASP loss", "SpecSync loss"});
  for (int i = 1; i <= 8; ++i) {
    const SimTime t = SimTime::FromSeconds(2000.0 * i / 8.0);
    auto la = LossAtTime(asp.sim.trace, t);
    auto ls = LossAtTime(spec.sim.trace, t);
    loss.AddRow({Table::Format(t.seconds()),
                 la ? Table::Format(*la) : "-",
                 ls ? Table::Format(*ls) : "-"});
  }
  loss.PrintPretty(std::cout);

  const auto asp_by_class = StalenessByClass(asp, 4);
  const auto spec_by_class = StalenessByClass(spec, 4);
  Table staleness({"instance class (speed)", "ASP staleness",
                   "SpecSync staleness"});
  const char* names[] = {"slow (1.7x)", "medium (0.9x)", "baseline (1.0x)",
                         "fast (0.5x)"};
  for (std::size_t c = 0; c < 4; ++c) {
    staleness.AddRowValues(names[c], asp_by_class[c], spec_by_class[c]);
  }
  std::cout << "\nMean missed updates per push, by instance class — the slow\n"
               "class computes on the stalest parameters; speculation lets it\n"
               "refresh mid-iteration (paper Sec. IV-A, benefit 2):\n";
  staleness.PrintPretty(std::cout);

  std::cout << "\naborts: SpecSync=" << spec.sim.total_aborts << " over "
            << spec.sim.total_pushes << " pushes; ASP final loss "
            << asp.final_loss << " vs SpecSync " << spec.final_loss << "\n";
  return 0;
}
